//! PETQ and top-k search over the PDR-tree (paper §3.2, "PETQ(q, T)").
//!
//! Threshold search is a depth-first traversal pruned by Lemma 2: a branch
//! is entered only if `⟨c.v, q⟩ ≥ τ`. Top-k search upgrades the threshold
//! dynamically and greedily visits the child with the largest `⟨c.v, q⟩`
//! first, "finding better candidates at the beginning of the search which
//! in turn results in better pruning".

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use uncat_core::equality::{eq_prob, meets_threshold, THRESHOLD_EPS};
use uncat_core::query::{sort_matches_desc, EqQuery, Match, TopKQuery};
use uncat_core::topk::TopKHeap;
use uncat_storage::{BufferPool, PageId, Phase, QueryMetrics, Result};

use crate::node::{read_node, Node};
use crate::tree::PdrTree;

impl PdrTree {
    /// Evaluate a PETQ, returning qualifying tuples with exact equality
    /// probabilities in canonical descending order.
    pub fn petq(&self, pool: &mut BufferPool, query: &EqQuery) -> Result<Vec<Match>> {
        self.petq_metered(pool, query, &mut QueryMetrics::new())
    }

    /// [`PdrTree::petq`] with execution counters: each node read is a
    /// `nodes_visited`, each child skipped by Lemma 2 a `nodes_pruned`,
    /// and each leaf entry scored a `leaf_entries_examined`. Pruning
    /// effectiveness is `nodes_pruned / (nodes_visited + nodes_pruned)`.
    pub fn petq_metered(
        &self,
        pool: &mut BufferPool,
        query: &EqQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        let mut out = Vec::new();
        let span = pool.trace_begin(Phase::TreeTraversal);
        let mut stack = vec![self.root()];
        while let Some(pid) = stack.pop() {
            metrics.nodes_visited += 1;
            match read_node(pool, pid, self.config().compression)? {
                Node::Leaf(entries) => {
                    metrics.leaf_entries_examined += entries.len() as u64;
                    for e in &entries {
                        let pr = eq_prob(&query.q, &e.uda);
                        if meets_threshold(pr, query.tau) {
                            out.push(Match::new(e.tid, pr));
                        }
                    }
                }
                Node::Internal(children) => {
                    for c in &children {
                        // Lemma 2: boundaries over-estimate every subtree
                        // distribution, so this bound is an upper bound on
                        // Pr(q = u) below c.
                        if c.boundary.eq_upper_bound(&query.q) >= query.tau - THRESHOLD_EPS {
                            stack.push(c.pid);
                        } else {
                            metrics.nodes_pruned += 1;
                        }
                    }
                }
            }
        }
        pool.trace_end(span);
        sort_matches_desc(&mut out);
        Ok(out)
    }

    /// PEQ: all tuples with non-zero equality probability.
    pub fn peq(&self, pool: &mut BufferPool, q: &uncat_core::Uda) -> Result<Vec<Match>> {
        let mut out = self.petq(pool, &EqQuery::new(q.clone(), f64::MIN_POSITIVE))?;
        out.retain(|m| m.score > 0.0);
        Ok(out)
    }

    /// The `k` tuples with the highest equality probability, in canonical
    /// order. Best-first traversal: nodes are visited in decreasing
    /// upper-bound order, so the search stops as soon as the best
    /// unexplored bound cannot beat the current k-th best probability.
    pub fn top_k(&self, pool: &mut BufferPool, query: &TopKQuery) -> Result<Vec<Match>> {
        self.top_k_metered(pool, query, &mut QueryMetrics::new())
    }

    /// [`PdrTree::top_k`] with execution counters (conventions of
    /// [`PdrTree::petq_metered`]; children cut by the dynamic k-th-best
    /// threshold also count as `nodes_pruned`).
    pub fn top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        self.top_k_floored_metered(pool, query, 0.0, metrics)
    }

    /// [`PdrTree::top_k_metered`] under an external score *floor*: the `k`
    /// best matches scoring at least `floor`. The floor becomes the heap's
    /// initial threshold, so subtrees whose Lemma-2 upper bound cannot
    /// reach it are pruned from the first node on — never more work than a
    /// plain top-k, and the best-first stop fires even before `k` matches
    /// exist once every unexplored bound is below the floor. Non-positive
    /// and non-finite floors degrade to a plain top-k.
    pub fn top_k_floored_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        floor: f64,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        struct Pending {
            bound: f64,
            pid: PageId,
        }
        impl PartialEq for Pending {
            fn eq(&self, other: &Self) -> bool {
                self.bound == other.bound
            }
        }
        impl Eq for Pending {}
        impl Ord for Pending {
            fn cmp(&self, other: &Self) -> Ordering {
                self.bound
                    .partial_cmp(&other.bound)
                    .expect("bounds are finite")
            }
        }
        impl PartialOrd for Pending {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        if query.k == 0 {
            return Ok(Vec::new());
        }
        let floor = if floor.is_finite() && floor > 0.0 {
            floor
        } else {
            0.0
        };
        // `heap.threshold()` is `floor` until the heap fills, then the
        // k-th best score — exactly the cutoff every prune below wants.
        let mut heap = TopKHeap::new(query.k, floor);
        let span = pool.trace_begin(Phase::TreeTraversal);
        let mut frontier = BinaryHeap::new();
        frontier.push(Pending {
            bound: f64::INFINITY,
            pid: self.root(),
        });
        while let Some(Pending { bound, pid }) = frontier.pop() {
            if bound < heap.threshold() - THRESHOLD_EPS {
                // The remaining frontier is cut without being read.
                metrics.nodes_pruned += 1 + frontier.len() as u64;
                break; // no unexplored subtree can reach the cutoff
            }
            metrics.nodes_visited += 1;
            match read_node(pool, pid, self.config().compression)? {
                Node::Leaf(entries) => {
                    metrics.leaf_entries_examined += entries.len() as u64;
                    for e in &entries {
                        let pr = eq_prob(&query.q, &e.uda);
                        if pr > 0.0 {
                            heap.offer(e.tid, pr);
                        }
                    }
                }
                Node::Internal(children) => {
                    for c in &children {
                        let b = c.boundary.eq_upper_bound(&query.q);
                        if b >= heap.threshold() - THRESHOLD_EPS {
                            frontier.push(Pending {
                                bound: b,
                                pid: c.pid,
                            });
                        } else {
                            metrics.nodes_pruned += 1;
                        }
                    }
                }
            }
        }
        pool.trace_end(span);
        Ok(heap.into_sorted())
    }
}

#[cfg(test)]
mod tests {
    use uncat_core::query::{EqQuery, TopKQuery};
    use uncat_core::{CatId, Domain, Uda};
    use uncat_storage::{BufferPool, InMemoryDisk};

    use crate::{PdrConfig, PdrTree};

    fn pool() -> BufferPool {
        BufferPool::with_capacity(InMemoryDisk::shared(), 32)
    }

    #[test]
    fn queries_on_empty_tree_return_nothing() {
        let mut p = pool();
        let t = PdrTree::new(Domain::anonymous(3), PdrConfig::default(), &mut p).unwrap();
        let q = Uda::certain(CatId(0));
        assert!(t
            .petq(&mut p, &EqQuery::new(q.clone(), 0.1))
            .unwrap()
            .is_empty());
        assert!(t
            .top_k(&mut p, &TopKQuery::new(q.clone(), 5))
            .unwrap()
            .is_empty());
        assert!(t.peq(&mut p, &q).unwrap().is_empty());
    }

    #[test]
    fn top_k_zero_returns_nothing() {
        let mut p = pool();
        let mut t = PdrTree::new(Domain::anonymous(3), PdrConfig::default(), &mut p).unwrap();
        t.insert(&mut p, 1, &Uda::certain(CatId(0))).unwrap();
        assert!(t
            .top_k(&mut p, &TopKQuery::new(Uda::certain(CatId(0)), 0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn query_disjoint_from_data_is_empty_and_cheap() {
        let mut p = pool();
        let mut t = PdrTree::new(Domain::anonymous(10), PdrConfig::default(), &mut p).unwrap();
        for i in 0..50u64 {
            t.insert(&mut p, i, &Uda::certain(CatId((i % 3) as u32)))
                .unwrap();
        }
        p.clear().unwrap();
        p.reset_stats();
        let out = t
            .petq(&mut p, &EqQuery::new(Uda::certain(CatId(9)), 0.01))
            .unwrap();
        assert!(out.is_empty());
        // Root-only visit: boundary prunes immediately.
        assert!(p.stats().physical_reads <= 2, "{:?}", p.stats());
    }
}
