//! Bottom-up (agglomerative) split.
//!
//! "We begin with each element forming an independent cluster. In each
//! step the closest pair of clusters (in terms of their distributional
//! distance) are merged. This process stops when only two clusters remain.
//! … no cluster is allowed to contain more than 3/4 of the total elements"
//! (paper §3.2). Cluster-to-cluster distance is the divergence between
//! cluster boundaries; merging unions the boundaries.

use crate::boundary::Boundary;
use crate::config::PdrConfig;

use super::{rebalance_bytes, Partition};

struct Cluster {
    members: Vec<usize>,
    boundary: Boundary,
    bytes: usize,
}

pub(crate) fn bottom_up(
    reps: &[Boundary],
    sizes: &[usize],
    byte_budget: usize,
    cfg: &PdrConfig,
) -> Partition {
    let n = reps.len();
    let dv = cfg.divergence;
    let cap = cfg.balance_cap(n);

    let mut clusters: Vec<Option<Cluster>> = reps
        .iter()
        .enumerate()
        .map(|(i, b)| {
            Some(Cluster {
                members: vec![i],
                boundary: b.clone(),
                bytes: sizes[i],
            })
        })
        .collect();
    let mut alive = n;

    // Pairwise distance cache; recomputed lazily for merged clusters.
    let mut dist = vec![f64::INFINITY; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = reps[i].divergence_between(&reps[j], dv);
            dist[i * n + j] = d;
        }
    }

    while alive > 2 {
        // Closest mergeable pair: merged size within the balance cap.
        // (With ≥ 3 clusters the two smallest always fit a ≥ 2/3 cap, so a
        // mergeable pair exists; the byte budget is restored afterwards.)
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            let Some(ci) = clusters[i].as_ref() else {
                continue;
            };
            for j in (i + 1)..n {
                let Some(cj) = clusters[j].as_ref() else {
                    continue;
                };
                if ci.members.len() + cj.members.len() > cap {
                    continue;
                }
                let d = dist[i * n + j];
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((i, j, _)) = best else { break };
        let cj = clusters[j].take().expect("alive cluster");
        let ci = clusters[i].as_mut().expect("alive cluster");
        ci.members.extend(cj.members);
        ci.boundary.merge_boundary(&cj.boundary);
        ci.bytes += cj.bytes;
        alive -= 1;
        // Refresh distances involving the merged cluster.
        let bi = clusters[i].as_ref().expect("alive").boundary.clone();
        for (k, cluster) in clusters.iter().enumerate() {
            if k == i {
                continue;
            }
            if let Some(ck) = cluster.as_ref() {
                let d = bi.divergence_between(&ck.boundary, dv);
                let (a, b) = if i < k { (i, k) } else { (k, i) };
                dist[a * n + b] = d;
            }
        }
    }

    let mut sides: Vec<Vec<usize>> = clusters.into_iter().flatten().map(|c| c.members).collect();
    // `break` above (no mergeable pair) can only leave two sides here
    // because a mergeable pair always exists while more than two remain.
    assert_eq!(sides.len(), 2, "agglomeration must end with two clusters");
    let mut right = sides.pop().expect("two clusters");
    let mut left = sides.pop().expect("two clusters");
    rebalance_bytes(&mut left, &mut right, sizes, byte_budget);
    Partition { left, right }
}
