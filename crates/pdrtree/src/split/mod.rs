//! Node split strategies (paper §3.2, "Split()").
//!
//! Both strategies partition a node's entries into two groups under two
//! constraints: the paper's balance cap ("no cluster is allowed to contain
//! more than 3/4 of the total elements") and the physical page budget
//! (entries are variable-length, so a by-count balance alone could still
//! overflow a page).
//!
//! Entries are abstracted as `(representative boundary, serialized size)`
//! pairs; leaf splits pass per-UDA boundaries, internal splits pass the
//! child boundaries themselves.

mod bottomup;
mod topdown;

use crate::boundary::Boundary;
use crate::config::{PdrConfig, SplitStrategy};

pub(crate) use bottomup::bottom_up;
pub(crate) use topdown::top_down;

/// The outcome of a split: index sets for the two new nodes.
#[derive(Debug)]
pub(crate) struct Partition {
    pub left: Vec<usize>,
    pub right: Vec<usize>,
}

impl Partition {
    /// Sanity-check: a real two-way partition of `n` items.
    pub(crate) fn validate(&self, n: usize) {
        assert!(
            !self.left.is_empty() && !self.right.is_empty(),
            "degenerate split"
        );
        assert_eq!(self.left.len() + self.right.len(), n, "split lost entries");
        let mut seen = vec![false; n];
        for &i in self.left.iter().chain(&self.right) {
            assert!(!seen[i], "entry {i} assigned twice");
            seen[i] = true;
        }
    }
}

/// Split `n` entries with representatives `reps` and serialized sizes
/// `sizes` into two groups, each within `byte_budget` and the config's
/// balance cap.
pub(crate) fn split(
    reps: &[Boundary],
    sizes: &[usize],
    byte_budget: usize,
    cfg: &PdrConfig,
) -> Partition {
    debug_assert_eq!(reps.len(), sizes.len());
    debug_assert!(reps.len() >= 2, "cannot split fewer than two entries");
    let p = match cfg.split {
        SplitStrategy::TopDown => top_down(reps, sizes, byte_budget, cfg),
        SplitStrategy::BottomUp => bottom_up(reps, sizes, byte_budget, cfg),
    };
    p.validate(reps.len());
    debug_assert!(p.left.iter().map(|&i| sizes[i]).sum::<usize>() <= byte_budget);
    debug_assert!(p.right.iter().map(|&i| sizes[i]).sum::<usize>() <= byte_budget);
    p
}

/// Move members from an over-budget side to the other until both fit.
/// `order` lists the overfull side's members from most-movable first.
pub(super) fn rebalance_bytes(
    left: &mut Vec<usize>,
    right: &mut Vec<usize>,
    sizes: &[usize],
    byte_budget: usize,
) {
    let bytes = |v: &[usize]| v.iter().map(|&i| sizes[i]).sum::<usize>();
    // At most one side can exceed the budget (the total fit a page plus one
    // entry before the split); move its smallest members across.
    loop {
        let (lb, rb) = (bytes(left), bytes(right));
        if lb <= byte_budget && rb <= byte_budget {
            return;
        }
        let (from, to) = if lb > rb {
            (&mut *left, &mut *right)
        } else {
            (&mut *right, &mut *left)
        };
        assert!(from.len() > 1, "cannot rebalance a single oversized entry");
        // Move the smallest entry: least likely to push the target over.
        let (k, _) = from
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| sizes[i])
            .expect("non-empty");
        let moved = from.swap_remove(k);
        to.push(moved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Compression;
    use uncat_core::{CatId, Divergence, Uda};

    fn rep(pairs: &[(u32, f32)]) -> Boundary {
        Boundary::of_uda(
            &Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap(),
            Compression::None,
        )
    }

    fn two_obvious_clusters() -> Vec<Boundary> {
        // Five near (0,1)-concentrated, five near (2,3)-concentrated.
        let mut v = Vec::new();
        for i in 0..5 {
            let a = 0.5 + 0.05 * i as f32;
            v.push(rep(&[(0, a), (1, 1.0 - a)]));
        }
        for i in 0..5 {
            let a = 0.5 + 0.05 * i as f32;
            v.push(rep(&[(2, a), (3, 1.0 - a)]));
        }
        v
    }

    fn cfg(split: SplitStrategy) -> PdrConfig {
        PdrConfig {
            split,
            divergence: Divergence::Kl,
            ..PdrConfig::default()
        }
    }

    #[test]
    fn both_strategies_separate_obvious_clusters() {
        let reps = two_obvious_clusters();
        let sizes = vec![20usize; reps.len()];
        for s in [SplitStrategy::TopDown, SplitStrategy::BottomUp] {
            let p = split(&reps, &sizes, 10_000, &cfg(s));
            // Each side must be exactly one of the two natural clusters.
            let mut left: Vec<usize> = p.left.clone();
            left.sort();
            assert!(
                left == vec![0, 1, 2, 3, 4] || left == vec![5, 6, 7, 8, 9],
                "{s:?} mixed the clusters: {left:?}"
            );
        }
    }

    #[test]
    fn balance_cap_respected_on_skewed_data() {
        // Nine identical entries and one outlier: unconstrained assignment
        // would put 9 on one side (> 3/4 of 10).
        let mut reps: Vec<Boundary> = (0..9).map(|_| rep(&[(0, 0.5), (1, 0.5)])).collect();
        reps.push(rep(&[(7, 1.0)]));
        let sizes = vec![20usize; 10];
        for s in [SplitStrategy::TopDown, SplitStrategy::BottomUp] {
            let p = split(&reps, &sizes, 10_000, &cfg(s));
            let cap = cfg(s).balance_cap(10);
            assert!(
                p.left.len() <= cap && p.right.len() <= cap,
                "{s:?} violated balance"
            );
        }
    }

    #[test]
    fn byte_budget_respected() {
        // One huge entry plus small ones: by-count balance alone would
        // overflow.
        let reps: Vec<Boundary> = (0..8).map(|i| rep(&[(i, 1.0)])).collect();
        let mut sizes = vec![10usize; 8];
        sizes[0] = 90;
        for s in [SplitStrategy::TopDown, SplitStrategy::BottomUp] {
            let p = split(&reps, &sizes, 100, &cfg(s));
            for side in [&p.left, &p.right] {
                let b: usize = side.iter().map(|&i| sizes[i]).sum();
                assert!(b <= 100, "{s:?} side exceeds byte budget: {b}");
            }
        }
    }

    #[test]
    fn two_entries_split_one_each() {
        let reps = vec![rep(&[(0, 1.0)]), rep(&[(1, 1.0)])];
        let sizes = vec![10, 10];
        for s in [SplitStrategy::TopDown, SplitStrategy::BottomUp] {
            let p = split(&reps, &sizes, 100, &cfg(s));
            assert_eq!(p.left.len(), 1);
            assert_eq!(p.right.len(), 1);
        }
    }

    #[test]
    fn identical_entries_still_split_validly() {
        let reps: Vec<Boundary> = (0..6).map(|_| rep(&[(0, 1.0)])).collect();
        let sizes = vec![10usize; 6];
        for s in [SplitStrategy::TopDown, SplitStrategy::BottomUp] {
            let p = split(&reps, &sizes, 100, &cfg(s));
            p.validate(6);
            let cap = cfg(s).balance_cap(6);
            assert!(p.left.len() <= cap && p.right.len() <= cap);
        }
    }
}
