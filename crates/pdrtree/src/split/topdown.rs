//! Top-down split: seed with the two distributionally farthest entries.
//!
//! "We pick two children MBRs whose boundaries are distributionally
//! farthest from each other according to the divergence measures. With
//! these two serving as the seeds for two clusters, all other UDAs are
//! inserted into the closer cluster. An additional consideration is to
//! create a balanced split" (paper §3.2). The paper's Figure 10 shows this
//! strategy is vulnerable to outlier seeds — which is exactly the behaviour
//! the reproduction exhibits.

use crate::boundary::Boundary;
use crate::config::PdrConfig;

use super::{rebalance_bytes, Partition};

pub(crate) fn top_down(
    reps: &[Boundary],
    sizes: &[usize],
    byte_budget: usize,
    cfg: &PdrConfig,
) -> Partition {
    let n = reps.len();
    let dv = cfg.divergence;

    // Farthest pair (O(n²) divergence evaluations).
    let (mut s1, mut s2, mut best) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = reps[i].divergence_between(&reps[j], dv);
            if d > best {
                best = d;
                s1 = i;
                s2 = j;
            }
        }
    }

    // "All other UDAs are inserted into the closer cluster", in input
    // order, subject to the balance cap — deliberately as naive as the
    // paper describes (Figure 10 shows this strategy's weakness: outlier
    // seeds drag ordinary entries to the wrong side).
    let cap = cfg.balance_cap(n);
    let mut left = vec![s1];
    let mut right = vec![s2];
    for k in (0..n).filter(|&k| k != s1 && k != s2) {
        let d1 = reps[k].divergence_between(&reps[s1], dv);
        let d2 = reps[k].divergence_between(&reps[s2], dv);
        let prefer_left = d1 <= d2;
        let left_open = left.len() < cap;
        let right_open = right.len() < cap;
        if (prefer_left && left_open) || !right_open {
            left.push(k);
        } else {
            right.push(k);
        }
    }
    rebalance_bytes(&mut left, &mut right, sizes, byte_budget);
    Partition { left, right }
}
