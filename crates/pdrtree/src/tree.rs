//! The PDR-tree structure: creation, insertion, deletion.

use uncat_core::{Domain, Uda};
use uncat_storage::{BufferPool, PageId, Result, StorageError, PAGE_SIZE};

use crate::boundary::Boundary;
use crate::config::PdrConfig;
use crate::node::{
    boundary_size, leaf_entry_size, read_node, write_node, ChildEntry, LeafEntry, Node, NODE_HDR,
};
use crate::split;

/// Nodes are also capped by entry count (besides the page-size budget) so
/// that the quadratic split algorithms stay cheap on very sparse data.
pub(crate) const MAX_NODE_ENTRIES: usize = 256;

/// Byte budget for a node's entries.
pub(crate) const NODE_BUDGET: usize = PAGE_SIZE - NODE_HDR;

/// A Probabilistic Distribution R-tree over one uncertain attribute.
///
/// Every operation that touches pages is fallible: an I/O error or a
/// corrupted page surfaces as [`uncat_storage::StorageError`] from the one
/// call that hit it.
///
/// ```
/// use uncat_core::{CatId, Domain, EqQuery, Uda};
/// use uncat_pdrtree::{PdrConfig, PdrTree};
/// use uncat_storage::{BufferPool, InMemoryDisk};
///
/// let mut pool = BufferPool::new(InMemoryDisk::shared());
/// let t0 = Uda::from_pairs([(CatId(0), 0.8), (CatId(2), 0.2)])?;
/// let t1 = Uda::from_pairs([(CatId(1), 1.0)])?;
/// let tree = PdrTree::build(
///     Domain::anonymous(3),
///     PdrConfig::default(),
///     &mut pool,
///     [(0u64, &t0), (1u64, &t1)],
/// )
/// .expect("in-memory build");
///
/// let hits = tree
///     .petq(&mut pool, &EqQuery::new(Uda::certain(CatId(0)), 0.5))
///     .expect("in-memory query");
/// assert_eq!(hits.len(), 1);
/// assert!((hits[0].score - 0.8).abs() < 1e-6);
/// # Ok::<(), uncat_core::Error>(())
/// ```
pub struct PdrTree {
    root: PageId,
    config: PdrConfig,
    domain: Domain,
    len: u64,
    depth: u32,
}

impl PdrTree {
    /// Create an empty tree.
    ///
    /// Panics if `config` is invalid (see [`PdrConfig::validate`]).
    pub fn new(domain: Domain, config: PdrConfig, pool: &mut BufferPool) -> Result<PdrTree> {
        config.validate().expect("invalid PDR-tree configuration");
        let root = pool.allocate()?;
        write_node(pool, root, &Node::Leaf(Vec::new()), config.compression)?;
        Ok(PdrTree {
            root,
            config,
            domain,
            len: 0,
            depth: 1,
        })
    }

    /// Build a tree by inserting every tuple.
    pub fn build<'a, I>(
        domain: Domain,
        config: PdrConfig,
        pool: &mut BufferPool,
        tuples: I,
    ) -> Result<PdrTree>
    where
        I: IntoIterator<Item = (u64, &'a Uda)>,
    {
        let mut t = PdrTree::new(domain, config, pool)?;
        for (tid, uda) in tuples {
            t.insert(pool, tid, uda)?;
        }
        Ok(t)
    }

    /// Number of stored distributions.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels (1 = a single leaf).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The tree's configuration.
    pub fn config(&self) -> &PdrConfig {
        &self.config
    }

    /// The indexed domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Planner-facing statistics derived from the in-memory header alone
    /// — no page is read, unlike [`PdrTree::stats`]. `entries` and
    /// `depth` are exact; the node counts are estimates from pinned
    /// occupancy assumptions (see [`PdrCostStats`]), good enough for the
    /// order-of-magnitude backend choice the query planner makes.
    pub fn cost_stats(&self) -> PdrCostStats {
        // Typical occupancy under the paper-default configuration:
        // a 4 KiB page holds a few dozen boundary-compressed entries,
        // and internal fan-out settles near the balance cap.
        const LEAF_ENTRY_EST: u64 = 32;
        const FANOUT_EST: u64 = 8;
        let leaves_est = self.len.div_ceil(LEAF_ENTRY_EST).max(1);
        let mut nodes_est = leaves_est;
        let mut level = leaves_est;
        while level > 1 {
            level = level.div_ceil(FANOUT_EST);
            nodes_est += level;
        }
        PdrCostStats {
            entries: self.len,
            depth: self.depth,
            leaves_est,
            nodes_est,
        }
    }

    pub(crate) fn root(&self) -> PageId {
        self.root
    }

    /// Assemble a tree from parts (bulk loader).
    pub(crate) fn from_raw(
        root: PageId,
        config: PdrConfig,
        domain: Domain,
        len: u64,
        depth: u32,
    ) -> PdrTree {
        PdrTree {
            root,
            config,
            domain,
            len,
            depth,
        }
    }

    /// Insert a distribution.
    ///
    /// A UDA too wide to share a node page with a sibling is rejected
    /// with [`StorageError::RecordTooLarge`] before anything is modified
    /// (the split algorithms need two entries per page).
    pub fn insert(&mut self, pool: &mut BufferPool, tid: u64, uda: &Uda) -> Result<()> {
        let size = leaf_entry_size(uda);
        if size > NODE_BUDGET / 2 {
            return Err(StorageError::RecordTooLarge {
                len: size,
                max: NODE_BUDGET / 2,
            });
        }
        if let Some((left, right)) = self.insert_rec(pool, self.root, tid, uda)? {
            // Root split: grow a new root above.
            let new_root = pool.allocate()?;
            write_node(
                pool,
                new_root,
                &Node::Internal(vec![left, right]),
                self.config.compression,
            )?;
            self.root = new_root;
            self.depth += 1;
        }
        self.len += 1;
        Ok(())
    }

    /// Recursive insert. `Some((l, r))` means the node at `pid` split: the
    /// caller must replace its reference to `pid` with `l` (same page id)
    /// and add `r`.
    fn insert_rec(
        &mut self,
        pool: &mut BufferPool,
        pid: PageId,
        tid: u64,
        uda: &Uda,
    ) -> Result<Option<(ChildEntry, ChildEntry)>> {
        let compression = self.config.compression;
        match read_node(pool, pid, compression)? {
            Node::Leaf(mut entries) => {
                entries.push(LeafEntry {
                    tid,
                    uda: clone_uda(uda),
                });
                let node = Node::Leaf(entries);
                if node.fits(compression) && node.count() <= MAX_NODE_ENTRIES {
                    write_node(pool, pid, &node, compression)?;
                    return Ok(None);
                }
                let Node::Leaf(entries) = node else {
                    unreachable!()
                };
                Ok(Some(self.split_leaf(pool, pid, entries)?))
            }
            Node::Internal(mut children) => {
                let best = self.choose_child(&children, uda);
                children[best].boundary.merge_uda(uda);
                let child_pid = children[best].pid;
                // Descend first; the widened boundary (and any child split)
                // is persisted in one write below. Note that widening alone
                // can overflow the page — sparse boundaries grow when the
                // UDA brings new categories — so even the no-child-split
                // path may need to split this node.
                if let Some((l, r)) = self.insert_rec(pool, child_pid, tid, uda)? {
                    children[best] = l;
                    children.push(r);
                }
                let node = Node::Internal(children);
                if node.fits(compression) && node.count() <= MAX_NODE_ENTRIES {
                    write_node(pool, pid, &node, compression)?;
                    return Ok(None);
                }
                let Node::Internal(children) = node else {
                    unreachable!()
                };
                Ok(Some(self.split_internal(pool, pid, children)?))
            }
        }
    }

    /// "The following criteria (or combination of these) are used to pick
    /// the best page: (1) minimum area increase; (2) most similar MBR."
    /// Area increase is primary; distributional similarity breaks ties.
    fn choose_child(&self, children: &[ChildEntry], uda: &Uda) -> usize {
        debug_assert!(!children.is_empty());
        let mut best = 0usize;
        let mut best_inc = f64::INFINITY;
        let mut best_div = f64::INFINITY;
        for (i, c) in children.iter().enumerate() {
            let inc = c.boundary.area_increase(uda);
            if inc < best_inc - 1e-12 {
                best = i;
                best_inc = inc;
                best_div = f64::NAN; // computed lazily below when tied
            } else if (inc - best_inc).abs() <= 1e-12 {
                if best_div.is_nan() {
                    best_div = children[best]
                        .boundary
                        .divergence_to(uda, self.config.divergence);
                }
                let div = c.boundary.divergence_to(uda, self.config.divergence);
                if div < best_div {
                    best = i;
                    best_div = div;
                }
            }
        }
        best
    }

    fn split_leaf(
        &mut self,
        pool: &mut BufferPool,
        pid: PageId,
        entries: Vec<LeafEntry>,
    ) -> Result<(ChildEntry, ChildEntry)> {
        let compression = self.config.compression;
        let reps: Vec<Boundary> = entries
            .iter()
            .map(|e| Boundary::of_uda(&e.uda, compression))
            .collect();
        let sizes: Vec<usize> = entries.iter().map(|e| leaf_entry_size(&e.uda)).collect();
        let part = split::split(&reps, &sizes, NODE_BUDGET, &self.config);

        let take = |idxs: &[usize]| -> (Vec<LeafEntry>, Boundary) {
            let mut out = Vec::with_capacity(idxs.len());
            let mut b = Boundary::empty(compression);
            for &i in idxs {
                b.merge_uda(&entries[i].uda);
                out.push(entries[i].clone());
            }
            (out, b)
        };
        let (left_entries, left_b) = take(&part.left);
        let (right_entries, right_b) = take(&part.right);

        let right_pid = pool.allocate()?;
        write_node(pool, pid, &Node::Leaf(left_entries), compression)?;
        write_node(pool, right_pid, &Node::Leaf(right_entries), compression)?;
        Ok((
            ChildEntry {
                pid,
                boundary: left_b,
            },
            ChildEntry {
                pid: right_pid,
                boundary: right_b,
            },
        ))
    }

    fn split_internal(
        &mut self,
        pool: &mut BufferPool,
        pid: PageId,
        children: Vec<ChildEntry>,
    ) -> Result<(ChildEntry, ChildEntry)> {
        let compression = self.config.compression;
        let reps: Vec<Boundary> = children.iter().map(|c| c.boundary.clone()).collect();
        let sizes: Vec<usize> = children
            .iter()
            .map(|c| 8 + boundary_size(&c.boundary, compression))
            .collect();
        let part = split::split(&reps, &sizes, NODE_BUDGET, &self.config);

        let take = |idxs: &[usize]| -> (Vec<ChildEntry>, Boundary) {
            let mut out = Vec::with_capacity(idxs.len());
            let mut b = Boundary::empty(compression);
            for &i in idxs {
                b.merge_boundary(&children[i].boundary);
                out.push(children[i].clone());
            }
            (out, b)
        };
        let (left_children, left_b) = take(&part.left);
        let (right_children, right_b) = take(&part.right);

        let right_pid = pool.allocate()?;
        write_node(pool, pid, &Node::Internal(left_children), compression)?;
        write_node(
            pool,
            right_pid,
            &Node::Internal(right_children),
            compression,
        )?;
        Ok((
            ChildEntry {
                pid,
                boundary: left_b,
            },
            ChildEntry {
                pid: right_pid,
                boundary: right_b,
            },
        ))
    }

    /// Delete tuple `tid`, whose stored distribution must equal `uda`.
    ///
    /// The distribution guides the descent: only subtrees whose boundary
    /// dominates it can hold the tuple. Boundaries along the removal path
    /// are recomputed from the surviving entries (repair), so they stay
    /// tight — a recomputed boundary is still a valid over-estimate for
    /// every remaining tuple, just no wider than needed. Returns whether
    /// the tuple was found.
    pub fn delete(&mut self, pool: &mut BufferPool, tid: u64, uda: &Uda) -> Result<bool> {
        Ok(self.delete_impl(pool, tid, Some(uda))?.is_some())
    }

    /// Delete tuple `tid` without knowing its distribution (unguided: the
    /// descent cannot prune, so the worst case is a full traversal).
    /// Returns the removed distribution, or `None` if the tuple was not
    /// stored. Boundaries along the removal path are repaired as in
    /// [`PdrTree::delete`].
    pub fn delete_by_tid(&mut self, pool: &mut BufferPool, tid: u64) -> Result<Option<Uda>> {
        self.delete_impl(pool, tid, None)
    }

    /// Upsert: replace `tid`'s distribution if present, insert it
    /// otherwise. Returns whether a previous distribution was replaced.
    pub fn update(&mut self, pool: &mut BufferPool, tid: u64, uda: &Uda) -> Result<bool> {
        let existed = self.delete_by_tid(pool, tid)?.is_some();
        self.insert(pool, tid, uda)?;
        Ok(existed)
    }

    /// Look up `tid`'s stored distribution (unguided full traversal in
    /// the worst case — the tree is keyed by distribution, not id).
    pub fn find_tuple(&self, pool: &mut BufferPool, tid: u64) -> Result<Option<Uda>> {
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            match read_node(pool, pid, self.config.compression)? {
                Node::Leaf(entries) => {
                    if let Some(e) = entries.into_iter().find(|e| e.tid == tid) {
                        return Ok(Some(e.uda));
                    }
                }
                Node::Internal(children) => stack.extend(children.iter().map(|c| c.pid)),
            }
        }
        Ok(None)
    }

    fn delete_impl(
        &mut self,
        pool: &mut BufferPool,
        tid: u64,
        guide: Option<&Uda>,
    ) -> Result<Option<Uda>> {
        match self.delete_rec(pool, self.root, tid, guide)? {
            Removal::NotFound => Ok(None),
            Removal::Removed { uda, boundary } => {
                self.len -= 1;
                if boundary.is_none() && self.depth > 1 {
                    // The root emptied out: collapse it back to depth 1.
                    write_node(
                        pool,
                        self.root,
                        &Node::Leaf(Vec::new()),
                        self.config.compression,
                    )?;
                    self.depth = 1;
                }
                Ok(Some(uda))
            }
        }
    }

    /// Recursive delete with boundary repair. On removal, returns the
    /// boundary recomputed from the node's surviving entries (`None` when
    /// the node is now empty, telling the parent to drop its reference —
    /// the emptied page is orphaned, like pages freed by merges; a later
    /// checkpoint-compaction could reclaim them).
    fn delete_rec(
        &mut self,
        pool: &mut BufferPool,
        pid: PageId,
        tid: u64,
        guide: Option<&Uda>,
    ) -> Result<Removal> {
        let compression = self.config.compression;
        match read_node(pool, pid, compression)? {
            Node::Leaf(mut entries) => {
                let Some(i) = entries.iter().position(|e| e.tid == tid) else {
                    return Ok(Removal::NotFound);
                };
                let removed = entries.remove(i);
                let boundary = (!entries.is_empty()).then(|| {
                    let mut b = Boundary::empty(compression);
                    for e in &entries {
                        b.merge_uda(&e.uda);
                    }
                    b
                });
                write_node(pool, pid, &Node::Leaf(entries), compression)?;
                Ok(Removal::Removed {
                    uda: removed.uda,
                    boundary,
                })
            }
            Node::Internal(mut children) => {
                for i in 0..children.len() {
                    if guide.is_some_and(|u| !children[i].boundary.dominates(u)) {
                        continue;
                    }
                    match self.delete_rec(pool, children[i].pid, tid, guide)? {
                        Removal::NotFound => continue,
                        Removal::Removed { uda, boundary } => {
                            match boundary {
                                Some(b) => children[i].boundary = b,
                                None => {
                                    children.remove(i);
                                }
                            }
                            let boundary = (!children.is_empty()).then(|| {
                                let mut b = Boundary::empty(compression);
                                for c in &children {
                                    b.merge_boundary(&c.boundary);
                                }
                                b
                            });
                            write_node(pool, pid, &Node::Internal(children), compression)?;
                            return Ok(Removal::Removed { uda, boundary });
                        }
                    }
                }
                Ok(Removal::NotFound)
            }
        }
    }

    /// Visit every stored `(tid, uda)` (tree order). A full traversal —
    /// used by tests and the scan baseline.
    pub fn for_each(&self, pool: &mut BufferPool, mut f: impl FnMut(u64, &Uda)) -> Result<()> {
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            match read_node(pool, pid, self.config.compression)? {
                Node::Leaf(entries) => {
                    for e in &entries {
                        f(e.tid, &e.uda);
                    }
                }
                Node::Internal(children) => stack.extend(children.iter().map(|c| c.pid)),
            }
        }
        Ok(())
    }

    /// Structural statistics (full traversal).
    pub fn stats(&self, pool: &mut BufferPool) -> Result<TreeStats> {
        let mut s = TreeStats {
            depth: self.depth,
            ..TreeStats::default()
        };
        let compression = self.config.compression;
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            let node = read_node(pool, pid, compression)?;
            s.nodes += 1;
            s.used_bytes += node.serialized_size(compression) as u64;
            match node {
                Node::Leaf(entries) => {
                    s.leaves += 1;
                    s.entries += entries.len() as u64;
                }
                Node::Internal(children) => {
                    s.fanout_sum += children.len() as u64;
                    s.internals += 1;
                    stack.extend(children.iter().map(|c| c.pid));
                }
            }
        }
        Ok(s)
    }

    /// Check structural invariants (every boundary dominates its subtree,
    /// counts add up). Test/debug aid; returns the number of leaf entries.
    pub fn check_invariants(&self, pool: &mut BufferPool) -> Result<u64> {
        let n = self.check_rec(pool, self.root, None)?;
        assert_eq!(n, self.len, "stored entries disagree with len()");
        Ok(n)
    }

    fn check_rec(
        &self,
        pool: &mut BufferPool,
        pid: PageId,
        bound: Option<&Boundary>,
    ) -> Result<u64> {
        match read_node(pool, pid, self.config.compression)? {
            Node::Leaf(entries) => {
                assert!(entries.len() <= MAX_NODE_ENTRIES);
                if let Some(b) = bound {
                    for e in &entries {
                        assert!(
                            b.dominates(&e.uda),
                            "boundary fails to dominate tuple {} in leaf {pid}",
                            e.tid
                        );
                    }
                }
                Ok(entries.len() as u64)
            }
            Node::Internal(children) => {
                assert!(!children.is_empty(), "internal node {pid} has no children");
                let mut n = 0;
                for c in &children {
                    if let Some(b) = bound {
                        // Child boundaries need not be nested component-wise
                        // after lossy compression of the parent — but the
                        // parent must still dominate every UDA, which the
                        // recursion checks directly.
                        let _ = b;
                    }
                    n += self.check_rec(pool, c.pid, Some(&c.boundary))?;
                }
                Ok(n)
            }
        }
    }
}

fn clone_uda(u: &Uda) -> Uda {
    u.clone()
}

/// Outcome of a recursive delete (see [`PdrTree::delete_rec`]).
enum Removal {
    /// The subtree does not hold the tuple.
    NotFound,
    /// The tuple was removed; `boundary` is the subtree's repaired
    /// boundary (`None` = the subtree is now empty).
    Removed {
        uda: Uda,
        boundary: Option<Boundary>,
    },
}

/// Zero-I/O statistics returned by [`PdrTree::cost_stats`], the
/// PDR-tree's contribution to the query planner's cost model. The exact
/// per-node picture ([`TreeStats`]) needs a full tree walk; planning
/// must not do I/O, so this carries the header-exact figures plus node
/// counts estimated under pinned occupancy assumptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdrCostStats {
    /// Stored distributions (exact).
    pub entries: u64,
    /// Tree height in levels (exact; 1 = a single leaf).
    pub depth: u32,
    /// Estimated leaf count (entries over an assumed per-leaf fill).
    pub leaves_est: u64,
    /// Estimated total page count (leaves plus the internal levels a
    /// fixed fan-out would need above them).
    pub nodes_est: u64,
}

/// Structural statistics returned by [`PdrTree::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeStats {
    /// Total nodes (pages).
    pub nodes: u64,
    /// Leaf nodes.
    pub leaves: u64,
    /// Internal nodes.
    pub internals: u64,
    /// Stored distributions.
    pub entries: u64,
    /// Sum of internal fan-outs (for the average).
    pub fanout_sum: u64,
    /// Serialized bytes actually used across all node pages.
    pub used_bytes: u64,
    /// Tree height.
    pub depth: u32,
}

impl TreeStats {
    /// Average internal fan-out.
    pub fn avg_fanout(&self) -> f64 {
        if self.internals == 0 {
            0.0
        } else {
            self.fanout_sum as f64 / self.internals as f64
        }
    }

    /// Average page-fill fraction across nodes.
    pub fn fill_factor(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.used_bytes as f64 / (self.nodes as f64 * PAGE_SIZE as f64)
        }
    }

    /// Average entries per leaf.
    pub fn avg_leaf_entries(&self) -> f64 {
        if self.leaves == 0 {
            0.0
        } else {
            self.entries as f64 / self.leaves as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Compression, SplitStrategy};
    use uncat_core::{CatId, Divergence};
    use uncat_storage::fault::{Fault, FaultStore};
    use uncat_storage::{InMemoryDisk, StorageError};

    fn pool() -> BufferPool {
        BufferPool::with_capacity(InMemoryDisk::shared(), 200)
    }

    /// Deterministic pseudo-random UDA stream.
    fn synth(n: usize, cats: u32, seed: u64) -> Vec<(u64, Uda)> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n as u64)
            .map(|tid| {
                let nz = 1 + (next() % 3) as usize;
                let mut b = uncat_core::UdaBuilder::new();
                let mut used = std::collections::HashSet::new();
                for _ in 0..nz {
                    let c = (next() % cats as u64) as u32;
                    if used.insert(c) {
                        b.push(CatId(c), 0.05 + (next() % 900) as f32 / 1000.0)
                            .unwrap();
                    }
                }
                (tid, b.finish_normalized().unwrap())
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let mut p = pool();
        let t = PdrTree::new(Domain::anonymous(4), PdrConfig::default(), &mut p).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.depth(), 1);
        assert_eq!(t.check_invariants(&mut p).unwrap(), 0);
    }

    #[test]
    fn insert_until_splits_and_check_invariants() {
        for split in [SplitStrategy::TopDown, SplitStrategy::BottomUp] {
            let mut p = pool();
            let cfg = PdrConfig {
                split,
                ..PdrConfig::default()
            };
            let data = synth(3000, 10, 42);
            let t = PdrTree::build(
                Domain::anonymous(10),
                cfg,
                &mut p,
                data.iter().map(|(i, u)| (*i, u)),
            )
            .unwrap();
            assert_eq!(t.len(), 3000);
            assert!(t.depth() >= 2, "{split:?}: 3000 tuples must split");
            assert_eq!(t.check_invariants(&mut p).unwrap(), 3000);
            // Every tuple is findable by traversal.
            let mut seen = std::collections::HashSet::new();
            t.for_each(&mut p, |tid, _| {
                assert!(seen.insert(tid), "tuple {tid} stored twice");
            })
            .unwrap();
            assert_eq!(seen.len(), 3000);
        }
    }

    #[test]
    fn invariants_hold_for_every_divergence() {
        for dv in Divergence::ALL {
            let mut p = pool();
            let cfg = PdrConfig {
                divergence: dv,
                ..PdrConfig::default()
            };
            let data = synth(1500, 8, 7);
            let t = PdrTree::build(
                Domain::anonymous(8),
                cfg,
                &mut p,
                data.iter().map(|(i, u)| (*i, u)),
            )
            .unwrap();
            assert_eq!(t.check_invariants(&mut p).unwrap(), 1500);
        }
    }

    #[test]
    fn invariants_hold_under_compression() {
        for compression in [
            Compression::Discretized { bits: 2 },
            Compression::Discretized { bits: 4 },
            Compression::Signature { width: 4 },
        ] {
            let mut p = pool();
            let cfg = PdrConfig {
                compression,
                ..PdrConfig::default()
            };
            let data = synth(1500, 20, 3);
            let t = PdrTree::build(
                Domain::anonymous(20),
                cfg,
                &mut p,
                data.iter().map(|(i, u)| (*i, u)),
            )
            .unwrap();
            assert_eq!(t.check_invariants(&mut p).unwrap(), 1500, "{compression:?}");
        }
    }

    #[test]
    fn delete_removes_and_preserves_structure() {
        let mut p = pool();
        let data = synth(800, 6, 9);
        let mut t = PdrTree::build(
            Domain::anonymous(6),
            PdrConfig::default(),
            &mut p,
            data.iter().map(|(i, u)| (*i, u)),
        )
        .unwrap();
        for (tid, u) in data.iter().take(400) {
            assert!(
                t.delete(&mut p, *tid, u).unwrap(),
                "tuple {tid} must be found"
            );
        }
        assert_eq!(t.len(), 400);
        assert!(!t.delete(&mut p, 0, &data[0].1).unwrap(), "double delete");
        assert_eq!(t.check_invariants(&mut p).unwrap(), 400);
        let mut remaining = 0;
        t.for_each(&mut p, |tid, _| {
            assert!(tid >= 400);
            remaining += 1;
        })
        .unwrap();
        assert_eq!(remaining, 400);
    }

    #[test]
    fn stats_reflect_structure() {
        let mut p = pool();
        let data = synth(4000, 8, 17);
        let t = PdrTree::build(
            Domain::anonymous(8),
            PdrConfig::default(),
            &mut p,
            data.iter().map(|(i, u)| (*i, u)),
        )
        .unwrap();
        let s = t.stats(&mut p).unwrap();
        assert_eq!(s.entries, 4000);
        assert_eq!(s.depth, t.depth());
        assert_eq!(s.nodes, s.leaves + s.internals);
        assert!(s.leaves > 1);
        assert!(s.avg_fanout() > 1.0);
        assert!(s.fill_factor() > 0.1 && s.fill_factor() <= 1.0);
        assert!(s.avg_leaf_entries() > 1.0);
    }

    #[test]
    fn tree_persists_across_pools() {
        let store = InMemoryDisk::shared();
        let data = synth(1000, 8, 11);
        let t = {
            let mut p = BufferPool::with_capacity(store.clone(), 200);
            let t = PdrTree::build(
                Domain::anonymous(8),
                PdrConfig::default(),
                &mut p,
                data.iter().map(|(i, u)| (*i, u)),
            )
            .unwrap();
            p.flush().unwrap();
            t
        };
        let mut q = BufferPool::with_capacity(store, 200);
        assert_eq!(t.check_invariants(&mut q).unwrap(), 1000);
    }

    #[test]
    fn injected_read_failure_degrades_one_operation() {
        let faults = std::sync::Arc::new(FaultStore::new(InMemoryDisk::shared(), 7));
        let mut p = BufferPool::with_capacity(faults.clone(), 200);
        let data = synth(600, 8, 5);
        let t = PdrTree::build(
            Domain::anonymous(8),
            PdrConfig::default(),
            &mut p,
            data.iter().map(|(i, u)| (*i, u)),
        )
        .unwrap();
        p.clear().unwrap();
        faults.arm(Fault::FailRead {
            after: faults.reads_so_far() + 1,
        });
        let err = t.for_each(&mut p, |_, _| {}).unwrap_err();
        assert!(matches!(err, StorageError::Io { op: "read", .. }), "{err}");
        // The fault is spent; the same traversal now succeeds.
        let mut n = 0u64;
        t.for_each(&mut p, |_, _| n += 1).unwrap();
        assert_eq!(n, 600);
    }

    #[test]
    fn oversized_uda_is_a_typed_error() {
        let mut p = pool();
        let mut t = PdrTree::new(Domain::anonymous(2000), PdrConfig::default(), &mut p).unwrap();
        let wide = Uda::from_pairs((0..1000).map(|i| (CatId(i), 0.001f32))).unwrap();
        assert!(matches!(
            t.insert(&mut p, 0, &wide),
            Err(StorageError::RecordTooLarge { .. })
        ));
        assert!(t.is_empty(), "rejected insert modifies nothing");
        assert_eq!(t.check_invariants(&mut p).unwrap(), 0);
    }

    #[test]
    fn delete_repairs_boundaries_tightly() {
        // After deleting every tuple that touches a category, repaired
        // boundaries must no longer dominate that category — a query UDA
        // concentrated there prunes at the root instead of descending.
        let mut p = pool();
        let data = synth(1200, 6, 13);
        let mut t = PdrTree::build(
            Domain::anonymous(6),
            PdrConfig::default(),
            &mut p,
            data.iter().map(|(i, u)| (*i, u)),
        )
        .unwrap();
        let touches_cat0 = |u: &Uda| u.iter().any(|(c, _)| c == CatId(0));
        let mut survivors = 0u64;
        for (tid, u) in &data {
            if touches_cat0(u) {
                assert!(t.delete(&mut p, *tid, u).unwrap());
            } else {
                survivors += 1;
            }
        }
        assert_eq!(t.len(), survivors);
        assert_eq!(t.check_invariants(&mut p).unwrap(), survivors);
        // Every surviving boundary was recomputed without cat 0, so the
        // root's children must not report any support there.
        let root = read_node(&mut p, t.root(), t.config().compression).unwrap();
        let certain0 = Uda::certain(CatId(0));
        if let Node::Internal(children) = root {
            for c in &children {
                assert!(
                    !c.boundary.dominates(&certain0),
                    "repaired boundary still spans the emptied category"
                );
            }
        }
    }

    #[test]
    fn delete_by_tid_returns_the_stored_distribution() {
        let mut p = pool();
        let data = synth(500, 6, 21);
        let mut t = PdrTree::build(
            Domain::anonymous(6),
            PdrConfig::default(),
            &mut p,
            data.iter().map(|(i, u)| (*i, u)),
        )
        .unwrap();
        assert_eq!(
            t.find_tuple(&mut p, 123).unwrap().as_ref(),
            Some(&data[123].1)
        );
        assert_eq!(
            t.delete_by_tid(&mut p, 123).unwrap(),
            Some(data[123].1.clone())
        );
        assert_eq!(t.delete_by_tid(&mut p, 123).unwrap(), None, "double delete");
        assert_eq!(t.find_tuple(&mut p, 123).unwrap(), None);
        assert_eq!(t.len(), 499);
        assert_eq!(t.check_invariants(&mut p).unwrap(), 499);
    }

    #[test]
    fn update_is_an_upsert() {
        let mut p = pool();
        let data = synth(300, 6, 31);
        let mut t = PdrTree::build(
            Domain::anonymous(6),
            PdrConfig::default(),
            &mut p,
            data.iter().map(|(i, u)| (*i, u)),
        )
        .unwrap();
        let fresh = Uda::from_pairs([(CatId(5), 1.0f32)]).unwrap();
        assert!(t.update(&mut p, 7, &fresh).unwrap(), "7 existed");
        assert!(!t.update(&mut p, 900, &fresh).unwrap(), "900 is new");
        assert_eq!(t.len(), 301);
        assert_eq!(t.find_tuple(&mut p, 7).unwrap(), Some(fresh.clone()));
        assert_eq!(t.find_tuple(&mut p, 900).unwrap(), Some(fresh));
        assert_eq!(t.check_invariants(&mut p).unwrap(), 301);
    }

    #[test]
    fn deleting_everything_collapses_to_an_empty_leaf() {
        let mut p = pool();
        let data = synth(900, 6, 37);
        let mut t = PdrTree::build(
            Domain::anonymous(6),
            PdrConfig::default(),
            &mut p,
            data.iter().map(|(i, u)| (*i, u)),
        )
        .unwrap();
        assert!(t.depth() >= 2);
        for (tid, _) in &data {
            assert!(t.delete_by_tid(&mut p, *tid).unwrap().is_some());
        }
        assert!(t.is_empty());
        assert_eq!(t.depth(), 1, "empty tree is a single leaf again");
        assert_eq!(t.check_invariants(&mut p).unwrap(), 0);
        // And it is insertable again.
        t.insert(&mut p, 1, &data[0].1).unwrap();
        assert_eq!(t.check_invariants(&mut p).unwrap(), 1);
    }
}
