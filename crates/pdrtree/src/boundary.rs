//! MBR boundary vectors.
//!
//! "The MBR boundary for a page is a vector `v = (v1, …, vN)` such that
//! `v_i` is the maximum probability of item `d_i` in any of the UDAs
//! indexed in the subtree of the current page" (paper §3.2). Boundaries
//! are *not* probability distributions (their mass may exceed 1); they are
//! point-wise upper envelopes.
//!
//! A boundary lives in one of two shapes, fixed per tree by the
//! compression configuration:
//!
//! * **Sparse** — `(cat, prob)` pairs over the original domain (used by
//!   [`Compression::None`] and [`Compression::Discretized`], the latter
//!   rounding probabilities up at serialization time);
//! * **Signature** — a dense `|C|`-vector over the compressed domain with
//!   the fixed mapping `f(d) = d mod |C|` (paper's set-signature scheme).
//!
//! Every operation preserves the *domination invariant*: for each UDA `u`
//! merged into a boundary `v`, `v(f(i)) ≥ u.p_i` for all `i` — including
//! after lossy serialization, which may only round up.

use uncat_core::uda::Entry;
use uncat_core::{CatId, Divergence, Prob, Uda};

use crate::config::Compression;

/// A point-wise maximum envelope over a set of distributions.
#[derive(Debug, Clone, PartialEq)]
pub enum Boundary {
    /// Sparse per-category maxima, sorted by category id.
    Sparse(Vec<Entry>),
    /// Dense maxima over the compressed domain `C`; `f(d) = d mod |C|`.
    Signature(Vec<Prob>),
}

impl Boundary {
    /// An empty boundary in the shape demanded by `compression`.
    pub fn empty(compression: Compression) -> Boundary {
        match compression {
            Compression::Signature { width } => Boundary::Signature(vec![0.0; width as usize]),
            _ => Boundary::Sparse(Vec::new()),
        }
    }

    /// Boundary of a single UDA.
    pub fn of_uda(u: &Uda, compression: Compression) -> Boundary {
        let mut b = Boundary::empty(compression);
        b.merge_uda(u);
        b
    }

    /// The boundary's upper bound for category `cat`.
    pub fn bound_of(&self, cat: CatId) -> Prob {
        match self {
            Boundary::Sparse(v) => match v.binary_search_by_key(&cat, |e| e.cat) {
                Ok(i) => v[i].prob,
                Err(_) => 0.0,
            },
            Boundary::Signature(vals) => vals[cat.index() % vals.len()],
        }
    }

    /// Whether the boundary dominates `u`: `bound_of(cat) ≥ p` for every
    /// entry of `u`.
    pub fn dominates(&self, u: &Uda) -> bool {
        u.iter().all(|(cat, p)| self.bound_of(cat) >= p)
    }

    /// Grow to dominate `u` (point-wise max).
    pub fn merge_uda(&mut self, u: &Uda) {
        match self {
            Boundary::Sparse(v) => merge_max(v, u.entries()),
            Boundary::Signature(vals) => {
                for (cat, p) in u.iter() {
                    let slot = cat.index() % vals.len();
                    vals[slot] = vals[slot].max(p);
                }
            }
        }
    }

    /// Grow to dominate everything `other` dominates.
    pub fn merge_boundary(&mut self, other: &Boundary) {
        match (self, other) {
            (Boundary::Sparse(v), Boundary::Sparse(o)) => merge_max(v, o),
            (Boundary::Signature(vals), Boundary::Signature(o)) => {
                assert_eq!(vals.len(), o.len(), "mismatched signature widths");
                for (a, b) in vals.iter_mut().zip(o) {
                    *a = a.max(*b);
                }
            }
            _ => panic!("mixed boundary shapes within one tree"),
        }
    }

    /// The L1 "area" of the boundary (paper: "the simplest one being the
    /// L1 measure of the boundaries, Σ v_i"). Insertion minimizes the area
    /// increase.
    pub fn area(&self) -> f64 {
        match self {
            Boundary::Sparse(v) => v.iter().map(|e| e.prob as f64).sum(),
            Boundary::Signature(vals) => vals.iter().map(|&p| p as f64).sum(),
        }
    }

    /// How much [`area`](Boundary::area) would grow if `u` were merged.
    pub fn area_increase(&self, u: &Uda) -> f64 {
        match self {
            Boundary::Sparse(_) => u
                .iter()
                .map(|(cat, p)| ((p - self.bound_of(cat)) as f64).max(0.0))
                .sum(),
            Boundary::Signature(vals) => {
                // Several query categories may share a slot; the slot grows
                // to the max of them, once.
                let mut grow = vec![0.0f64; vals.len()];
                for (cat, p) in u.iter() {
                    let slot = cat.index() % vals.len();
                    let inc = ((p - vals[slot]) as f64).max(0.0);
                    grow[slot] = grow[slot].max(inc);
                }
                grow.iter().sum()
            }
        }
    }

    /// Lemma 2's pruning score: an upper bound on `Pr(q = u)` for every `u`
    /// dominated by this boundary — `Σ_i q.p_i · v(f(i))`.
    pub fn eq_upper_bound(&self, q: &Uda) -> f64 {
        q.iter()
            .map(|(cat, p)| p as f64 * self.bound_of(cat) as f64)
            .sum()
    }

    /// A lower bound on `L1(q, u)` for every dominated `u`:
    /// `Σ_i max(0, q.p_i − v(f(i)))` (each `u_i ≤ v(f(i))`).
    pub fn l1_lower_bound(&self, q: &Uda) -> f64 {
        q.iter()
            .map(|(cat, p)| ((p - self.bound_of(cat)) as f64).max(0.0))
            .sum()
    }

    /// A lower bound on `L2(q, u)` for every dominated `u`.
    pub fn l2_lower_bound(&self, q: &Uda) -> f64 {
        q.iter()
            .map(|(cat, p)| {
                let d = ((p - self.bound_of(cat)) as f64).max(0.0);
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Distributional divergence between a UDA and this boundary, used for
    /// clustering decisions ("even though an MBR boundary is not a
    /// probability distribution in the strict sense, we can still apply
    /// most divergence measures").
    pub fn divergence_to(&self, u: &Uda, dv: Divergence) -> f64 {
        match self {
            Boundary::Sparse(v) => dv.eval(u.entries(), v),
            Boundary::Signature(vals) => {
                let compressed = compress_entries(u.entries(), vals.len());
                let dense: Vec<Entry> = vals
                    .iter()
                    .enumerate()
                    .filter(|&(_, &p)| p > 0.0)
                    .map(|(c, &p)| Entry {
                        cat: CatId(c as u32),
                        prob: p,
                    })
                    .collect();
                dv.eval(&compressed, &dense)
            }
        }
    }

    /// Divergence between two boundaries (cluster-to-cluster distance in
    /// the bottom-up split).
    pub fn divergence_between(&self, other: &Boundary, dv: Divergence) -> f64 {
        match (self, other) {
            (Boundary::Sparse(a), Boundary::Sparse(b)) => dv.eval(a, b),
            (Boundary::Signature(a), Boundary::Signature(b)) => {
                let da = dense_entries(a);
                let db = dense_entries(b);
                dv.eval(&da, &db)
            }
            _ => panic!("mixed boundary shapes within one tree"),
        }
    }

    /// Number of stored components (drives serialized size / fan-out).
    pub fn width(&self) -> usize {
        match self {
            Boundary::Sparse(v) => v.len(),
            Boundary::Signature(vals) => vals.len(),
        }
    }

    /// The sparse entries (panics for signature boundaries).
    pub fn entries(&self) -> &[Entry] {
        match self {
            Boundary::Sparse(v) => v,
            Boundary::Signature(_) => panic!("signature boundary has no sparse entries"),
        }
    }
}

/// Point-wise max merge of sorted sparse entry vectors, in place.
fn merge_max(dst: &mut Vec<Entry>, src: &[Entry]) {
    let mut out = Vec::with_capacity(dst.len() + src.len());
    let mut i = 0;
    let mut j = 0;
    while i < dst.len() && j < src.len() {
        match dst[i].cat.cmp(&src[j].cat) {
            std::cmp::Ordering::Less => {
                out.push(dst[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(src[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(Entry {
                    cat: dst[i].cat,
                    prob: dst[i].prob.max(src[j].prob),
                });
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&dst[i..]);
    out.extend_from_slice(&src[j..]);
    *dst = out;
}

/// Max-aggregate sparse entries into the compressed domain.
pub(crate) fn compress_entries(entries: &[Entry], width: usize) -> Vec<Entry> {
    let mut vals = vec![0.0f32; width];
    for e in entries {
        let slot = e.cat.index() % width;
        vals[slot] = vals[slot].max(e.prob);
    }
    dense_entries(&vals)
}

fn dense_entries(vals: &[Prob]) -> Vec<Entry> {
    vals.iter()
        .enumerate()
        .filter(|&(_, &p)| p > 0.0)
        .map(|(c, &p)| Entry {
            cat: CatId(c as u32),
            prob: p,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uda(pairs: &[(u32, f32)]) -> Uda {
        Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
    }

    #[test]
    fn sparse_merge_dominates_inputs() {
        let mut b = Boundary::empty(Compression::None);
        let u = uda(&[(0, 0.3), (2, 0.7)]);
        let v = uda(&[(0, 0.5), (1, 0.2), (2, 0.3)]);
        b.merge_uda(&u);
        b.merge_uda(&v);
        assert!(b.dominates(&u));
        assert!(b.dominates(&v));
        assert_eq!(b.bound_of(CatId(0)), 0.5);
        assert_eq!(b.bound_of(CatId(1)), 0.2);
        assert_eq!(b.bound_of(CatId(2)), 0.7);
        assert_eq!(b.bound_of(CatId(3)), 0.0);
        assert!((b.area() - 1.4).abs() < 1e-6);
    }

    #[test]
    fn eq_upper_bound_is_sound() {
        let u = uda(&[(0, 0.6), (1, 0.4)]);
        let v = uda(&[(0, 0.2), (2, 0.8)]);
        let mut b = Boundary::empty(Compression::None);
        b.merge_uda(&u);
        b.merge_uda(&v);
        let q = uda(&[(0, 0.5), (2, 0.5)]);
        let ub = b.eq_upper_bound(&q);
        for t in [&u, &v] {
            let pr = uncat_core::equality::eq_prob(&q, t);
            assert!(pr <= ub + 1e-9, "Pr {pr} exceeded bound {ub}");
        }
    }

    #[test]
    fn area_increase_matches_actual_growth() {
        let mut b = Boundary::of_uda(&uda(&[(0, 0.5), (1, 0.5)]), Compression::None);
        let u = uda(&[(0, 0.7), (3, 0.3)]);
        let predicted = b.area_increase(&u);
        let before = b.area();
        b.merge_uda(&u);
        assert!((b.area() - before - predicted).abs() < 1e-9);
        // Already-dominated UDA grows nothing.
        assert_eq!(b.area_increase(&uda(&[(0, 0.1), (1, 0.2)])), 0.0);
    }

    #[test]
    fn signature_boundary_dominates_via_mapping() {
        let mut b = Boundary::empty(Compression::Signature { width: 4 });
        let u = uda(&[(1, 0.4), (5, 0.6)]); // cats 1 and 5 share slot 1
        b.merge_uda(&u);
        assert!(b.dominates(&u));
        assert_eq!(
            b.bound_of(CatId(1)),
            0.6,
            "slot takes the max over the preimage"
        );
        assert_eq!(b.bound_of(CatId(5)), 0.6);
        assert_eq!(b.bound_of(CatId(0)), 0.0);
    }

    #[test]
    fn signature_eq_upper_bound_still_sound() {
        let mut b = Boundary::empty(Compression::Signature { width: 2 });
        let u = uda(&[(0, 0.5), (3, 0.5)]);
        let v = uda(&[(2, 0.9), (5, 0.1)]);
        b.merge_uda(&u);
        b.merge_uda(&v);
        let q = uda(&[(0, 0.3), (2, 0.3), (3, 0.4)]);
        let ub = b.eq_upper_bound(&q);
        for t in [&u, &v] {
            let pr = uncat_core::equality::eq_prob(&q, t);
            assert!(pr <= ub + 1e-9);
        }
    }

    #[test]
    fn signature_area_increase_counts_slots_once() {
        let b = Boundary::empty(Compression::Signature { width: 2 });
        // Cats 0 and 2 share slot 0; the slot grows to max(0.3, 0.8) once.
        let u = uda(&[(0, 0.3), (2, 0.7)]);
        assert!((b.area_increase(&u) - 0.7).abs() < 1e-6);
    }

    #[test]
    fn l1_lower_bound_is_sound() {
        let u = uda(&[(0, 0.6), (1, 0.4)]);
        let v = uda(&[(2, 1.0)]);
        let b = {
            let mut b = Boundary::of_uda(&u, Compression::None);
            b.merge_uda(&v);
            b
        };
        let q = uda(&[(0, 0.2), (3, 0.8)]);
        let lb = b.l1_lower_bound(&q);
        for t in [&u, &v] {
            let d = uncat_core::distance::l1(q.entries(), t.entries());
            assert!(d >= lb - 1e-9, "L1 {d} below bound {lb}");
        }
        let lb2 = b.l2_lower_bound(&q);
        for t in [&u, &v] {
            let d = uncat_core::distance::l2(q.entries(), t.entries());
            assert!(d >= lb2 - 1e-9);
        }
    }

    #[test]
    fn merge_boundaries_both_shapes() {
        let mut a = Boundary::of_uda(&uda(&[(0, 0.5)]), Compression::None);
        let b = Boundary::of_uda(&uda(&[(0, 0.1), (1, 0.9)]), Compression::None);
        a.merge_boundary(&b);
        assert_eq!(a.bound_of(CatId(0)), 0.5);
        assert_eq!(a.bound_of(CatId(1)), 0.9);

        let cfg = Compression::Signature { width: 3 };
        let mut s = Boundary::of_uda(&uda(&[(0, 0.5)]), cfg);
        let t = Boundary::of_uda(&uda(&[(3, 0.8)]), cfg); // slot 0 again
        s.merge_boundary(&t);
        assert_eq!(s.bound_of(CatId(0)), 0.8);
    }

    #[test]
    fn divergence_to_boundary_is_finite_and_zeroish_for_member() {
        let u = uda(&[(0, 0.5), (1, 0.5)]);
        let b = Boundary::of_uda(&u, Compression::None);
        for dv in Divergence::ALL {
            let d = b.divergence_to(&u, dv);
            assert!(d.is_finite());
            assert!(
                d.abs() < 1e-3,
                "{dv:?} distance of a member to its own envelope"
            );
        }
    }
}
