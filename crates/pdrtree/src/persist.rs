//! Metadata snapshots: close a PDR-tree and reopen it over the same
//! (durable) page store.
//!
//! Unlike the inverted index, the PDR-tree keeps almost nothing in memory
//! — just the root page, the configuration, and counters — so its
//! snapshot is a few dozen bytes. [`PdrTree::save`] wraps the blob in the
//! crash-atomic snapshot file protocol (`uncat_storage::snapshot::commit`):
//! a torn or corrupted save is detected on [`PdrTree::load`] and the
//! previous file survives untouched.

use std::path::Path;

use uncat_core::{Divergence, Domain};
use uncat_storage::snapshot::{
    self, read_domain_parts, write_domain_parts, Reader, SnapshotError, Writer,
};
use uncat_storage::SnapshotFileError;

use crate::config::{Compression, PdrConfig, SplitStrategy};
use crate::tree::PdrTree;

const MAGIC: &[u8; 4] = b"UPD1";

/// Serialize a domain (labels or anonymous cardinality) — shared encoding
/// with the inverted index via `uncat_storage::snapshot`.
fn write_domain(w: &mut Writer, d: &Domain) {
    let labels = d.is_labeled().then(|| d.labels());
    write_domain_parts(w, d.size(), labels);
}

fn read_domain(r: &mut Reader<'_>) -> Result<Domain, SnapshotError> {
    let (size, labels) = read_domain_parts(r)?;
    Ok(match labels {
        Some(l) => Domain::from_labels(l),
        None => Domain::anonymous(size),
    })
}

fn write_config(w: &mut Writer, c: &PdrConfig) {
    w.u8(match c.divergence {
        Divergence::L1 => 0,
        Divergence::L2 => 1,
        Divergence::Kl => 2,
    });
    w.u8(match c.split {
        SplitStrategy::TopDown => 0,
        SplitStrategy::BottomUp => 1,
    });
    match c.compression {
        Compression::None => {
            w.u8(0);
            w.u16(0);
        }
        Compression::Discretized { bits } => {
            w.u8(1);
            w.u16(bits as u16);
        }
        Compression::Signature { width } => {
            w.u8(2);
            w.u16(width);
        }
    }
    w.u32(c.balance_num as u32);
    w.u32(c.balance_den as u32);
}

fn read_config(r: &mut Reader<'_>) -> Result<PdrConfig, SnapshotError> {
    let divergence = match r.u8()? {
        0 => Divergence::L1,
        1 => Divergence::L2,
        2 => Divergence::Kl,
        _ => return Err(SnapshotError("unknown divergence")),
    };
    let split = match r.u8()? {
        0 => SplitStrategy::TopDown,
        1 => SplitStrategy::BottomUp,
        _ => return Err(SnapshotError("unknown split strategy")),
    };
    let ckind = r.u8()?;
    let carg = r.u16()?;
    let compression = match ckind {
        0 => Compression::None,
        1 => Compression::Discretized { bits: carg as u8 },
        2 => Compression::Signature { width: carg },
        _ => return Err(SnapshotError("unknown compression")),
    };
    let balance_num = r.u32()? as usize;
    let balance_den = r.u32()? as usize;
    let cfg = PdrConfig {
        divergence,
        split,
        compression,
        balance_num,
        balance_den,
    };
    cfg.validate()
        .map_err(|_| SnapshotError("invalid configuration"))?;
    Ok(cfg)
}

impl PdrTree {
    /// Serialize the tree's metadata. Flush the building pool first so the
    /// referenced pages are durable.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new(MAGIC);
        write_domain(&mut w, self.domain());
        write_config(&mut w, self.config());
        w.pid(self.root());
        w.u64(self.len());
        w.u32(self.depth());
        w.finish()
    }

    /// Reattach a tree from a snapshot over the same store.
    pub fn open(blob: &[u8]) -> Result<PdrTree, SnapshotError> {
        let mut r = Reader::new(blob, MAGIC)?;
        let domain = read_domain(&mut r)?;
        let config = read_config(&mut r)?;
        let root = r.pid()?;
        let len = r.u64()?;
        let depth = r.u32()?;
        if !r.is_done() {
            return Err(SnapshotError("trailing bytes"));
        }
        Ok(PdrTree::from_raw(root, config, domain, len, depth))
    }

    /// Commit the metadata snapshot to `path` atomically (temp file,
    /// fsync, rename): a crash mid-save leaves the previous snapshot
    /// loadable. Flush the page store first.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotFileError> {
        snapshot::commit(path, &self.snapshot())
    }

    /// Load a tree saved by [`PdrTree::save`]. Truncated, corrupt, or
    /// wrong-version files are rejected with a typed error.
    pub fn load(path: &Path) -> Result<PdrTree, SnapshotFileError> {
        let payload = snapshot::load(path)?;
        Ok(PdrTree::open(&payload)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncat_core::query::EqQuery;
    use uncat_core::{CatId, Uda};
    use uncat_storage::{BufferPool, FileDisk, InMemoryDisk};

    fn uda(pairs: &[(u32, f32)]) -> Uda {
        Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
    }

    #[test]
    fn snapshot_roundtrip_preserves_queries_and_config() {
        let store = InMemoryDisk::shared();
        let cfg = PdrConfig {
            divergence: Divergence::L1,
            split: SplitStrategy::TopDown,
            compression: Compression::Discretized { bits: 4 },
            ..PdrConfig::default()
        };
        let data: Vec<(u64, Uda)> = (0..500u64)
            .map(|i| {
                let c = (i % 9) as u32;
                (i, uda(&[(c, 0.7), ((c + 2) % 9, 0.3)]))
            })
            .collect();
        let blob = {
            let mut pool = BufferPool::with_capacity(store.clone(), 128);
            let tree = PdrTree::build(
                Domain::anonymous(9),
                cfg,
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            )
            .unwrap();
            pool.flush().unwrap();
            tree.snapshot()
        };

        let tree = PdrTree::open(&blob).expect("snapshot decodes");
        assert_eq!(tree.len(), 500);
        assert_eq!(*tree.config(), cfg, "configuration survives");
        let mut pool = BufferPool::with_capacity(store, 128);
        assert_eq!(tree.check_invariants(&mut pool).unwrap(), 500);
        let out = tree
            .petq(&mut pool, &EqQuery::new(uda(&[(0, 1.0)]), 0.5))
            .unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn save_load_roundtrip_over_a_real_file() {
        let dir = std::env::temp_dir();
        let pages = dir.join(format!("uncat-pdr-persist-{}.pages", std::process::id()));
        let snap = dir.join(format!("uncat-pdr-persist-{}.snap", std::process::id()));
        struct Cleanup(Vec<std::path::PathBuf>);
        impl Drop for Cleanup {
            fn drop(&mut self) {
                for p in &self.0 {
                    let _ = std::fs::remove_file(p);
                }
            }
        }
        let _guard = Cleanup(vec![pages.clone(), snap.clone()]);

        let data: Vec<(u64, Uda)> = (0..200u64)
            .map(|i| (i, uda(&[((i % 5) as u32, 1.0)])))
            .collect();
        {
            let store: uncat_storage::SharedStore =
                std::sync::Arc::new(FileDisk::create(&pages).expect("create"));
            let mut pool = BufferPool::with_capacity(store, 64);
            let tree = PdrTree::build(
                Domain::anonymous(5),
                PdrConfig::default(),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            )
            .unwrap();
            pool.flush().unwrap();
            tree.save(&snap).expect("atomic snapshot commit");
        }
        // Process "restart": reopen the page file and the snapshot file.
        let store: uncat_storage::SharedStore =
            std::sync::Arc::new(FileDisk::open(&pages).expect("open"));
        let tree = PdrTree::load(&snap).expect("snapshot loads");
        let mut pool = BufferPool::with_capacity(store, 64);
        let out = tree
            .petq(&mut pool, &EqQuery::new(uda(&[(2, 1.0)]), 0.9))
            .unwrap();
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn corrupt_snapshots_rejected() {
        assert!(PdrTree::open(b"junk").is_err());
        // Valid magic + invalid divergence byte.
        let mut w = Writer::new(MAGIC);
        w.u8(0);
        w.u32(3);
        w.u8(9); // bogus divergence
        let blob = w.finish();
        assert!(PdrTree::open(&blob).is_err());
    }
}
