//! Metadata snapshots: close a PDR-tree and reopen it over the same
//! (durable) page store.
//!
//! Unlike the inverted index, the PDR-tree keeps almost nothing in memory
//! — just the root page, the configuration, and counters — so its
//! snapshot is a few dozen bytes.

use uncat_core::{Divergence, Domain};
use uncat_storage::snapshot::{Reader, SnapshotError, Writer};

use crate::config::{Compression, PdrConfig, SplitStrategy};
use crate::tree::PdrTree;

const MAGIC: &[u8; 4] = b"UPD1";

fn write_domain(w: &mut Writer, d: &Domain) {
    if d.is_labeled() {
        w.u8(1);
        w.u32(d.size());
        for l in d.labels() {
            w.str(l);
        }
    } else {
        w.u8(0);
        w.u32(d.size());
    }
}

fn read_domain(r: &mut Reader<'_>) -> Result<Domain, SnapshotError> {
    let labeled = r.u8()? == 1;
    let size = r.u32()?;
    if labeled {
        let mut labels = Vec::with_capacity(size as usize);
        for _ in 0..size {
            labels.push(r.str()?);
        }
        Ok(Domain::from_labels(labels))
    } else {
        Ok(Domain::anonymous(size))
    }
}

fn write_config(w: &mut Writer, c: &PdrConfig) {
    w.u8(match c.divergence {
        Divergence::L1 => 0,
        Divergence::L2 => 1,
        Divergence::Kl => 2,
    });
    w.u8(match c.split {
        SplitStrategy::TopDown => 0,
        SplitStrategy::BottomUp => 1,
    });
    match c.compression {
        Compression::None => {
            w.u8(0);
            w.u16(0);
        }
        Compression::Discretized { bits } => {
            w.u8(1);
            w.u16(bits as u16);
        }
        Compression::Signature { width } => {
            w.u8(2);
            w.u16(width);
        }
    }
    w.u32(c.balance_num as u32);
    w.u32(c.balance_den as u32);
}

fn read_config(r: &mut Reader<'_>) -> Result<PdrConfig, SnapshotError> {
    let divergence = match r.u8()? {
        0 => Divergence::L1,
        1 => Divergence::L2,
        2 => Divergence::Kl,
        _ => return Err(SnapshotError("unknown divergence")),
    };
    let split = match r.u8()? {
        0 => SplitStrategy::TopDown,
        1 => SplitStrategy::BottomUp,
        _ => return Err(SnapshotError("unknown split strategy")),
    };
    let ckind = r.u8()?;
    let carg = r.u16()?;
    let compression = match ckind {
        0 => Compression::None,
        1 => Compression::Discretized { bits: carg as u8 },
        2 => Compression::Signature { width: carg },
        _ => return Err(SnapshotError("unknown compression")),
    };
    let balance_num = r.u32()? as usize;
    let balance_den = r.u32()? as usize;
    let cfg = PdrConfig { divergence, split, compression, balance_num, balance_den };
    cfg.validate().map_err(|_| SnapshotError("invalid configuration"))?;
    Ok(cfg)
}

impl PdrTree {
    /// Serialize the tree's metadata. Flush the building pool first so the
    /// referenced pages are durable.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new(MAGIC);
        write_domain(&mut w, self.domain());
        write_config(&mut w, self.config());
        w.pid(self.root());
        w.u64(self.len());
        w.u32(self.depth());
        w.finish()
    }

    /// Reattach a tree from a snapshot over the same store.
    pub fn open(blob: &[u8]) -> Result<PdrTree, SnapshotError> {
        let mut r = Reader::new(blob, MAGIC)?;
        let domain = read_domain(&mut r)?;
        let config = read_config(&mut r)?;
        let root = r.pid()?;
        let len = r.u64()?;
        let depth = r.u32()?;
        if !r.is_done() {
            return Err(SnapshotError("trailing bytes"));
        }
        Ok(PdrTree::from_raw(root, config, domain, len, depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncat_core::query::EqQuery;
    use uncat_core::{CatId, Uda};
    use uncat_storage::{BufferPool, InMemoryDisk};

    fn uda(pairs: &[(u32, f32)]) -> Uda {
        Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
    }

    #[test]
    fn snapshot_roundtrip_preserves_queries_and_config() {
        let store = InMemoryDisk::shared();
        let cfg = PdrConfig {
            divergence: Divergence::L1,
            split: SplitStrategy::TopDown,
            compression: Compression::Discretized { bits: 4 },
            ..PdrConfig::default()
        };
        let data: Vec<(u64, Uda)> = (0..500u64)
            .map(|i| {
                let c = (i % 9) as u32;
                (i, uda(&[(c, 0.7), ((c + 2) % 9, 0.3)]))
            })
            .collect();
        let blob = {
            let mut pool = BufferPool::with_capacity(store.clone(), 128);
            let tree = PdrTree::build(
                Domain::anonymous(9),
                cfg,
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            );
            pool.flush();
            tree.snapshot()
        };

        let tree = PdrTree::open(&blob).expect("snapshot decodes");
        assert_eq!(tree.len(), 500);
        assert_eq!(*tree.config(), cfg, "configuration survives");
        let mut pool = BufferPool::with_capacity(store, 128);
        assert_eq!(tree.check_invariants(&mut pool), 500);
        let out = tree.petq(&mut pool, &EqQuery::new(uda(&[(0, 1.0)]), 0.5));
        assert!(!out.is_empty());
    }

    #[test]
    fn corrupt_snapshots_rejected() {
        assert!(PdrTree::open(b"junk").is_err());
        // Valid magic + invalid divergence byte.
        let mut w = Writer::new(MAGIC);
        w.u8(0);
        w.u32(3);
        w.u8(9); // bogus divergence
        let blob = w.finish();
        assert!(PdrTree::open(&blob).is_err());
    }
}
