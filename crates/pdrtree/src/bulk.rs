//! Bulk loading.
//!
//! Incremental insertion splits nodes at the paper's ≤ 3/4 balance, which
//! leaves pages 50–70 % full. When the relation is known up front, a
//! sort-and-pack loader (in the spirit of STR bulk loading for R-trees)
//! produces near-full pages and tighter clusters:
//!
//! 1. sort distributions by their *mode* category (distributionally
//!    similar UDAs concentrate their mass on the same categories), ties by
//!    descending mode probability;
//! 2. pack leaves greedily to the page budget;
//! 3. build each internal level by packing the children's boundaries the
//!    same way.
//!
//! The result answers queries identically (tests enforce it); only the
//! page layout differs. The `bulkload` ablation in `uncat-bench` measures
//! the I/O difference.

use uncat_core::{Domain, Uda};
use uncat_storage::{BufferPool, Result};

use crate::boundary::Boundary;
use crate::config::PdrConfig;
use crate::node::{
    boundary_size, leaf_entry_size, write_node, ChildEntry, LeafEntry, Node, NODE_HDR,
};
use crate::tree::{PdrTree, MAX_NODE_ENTRIES, NODE_BUDGET};

/// Target fill fraction for bulk-built nodes: slightly under 100 % so the
/// first few subsequent inserts don't immediately split every leaf.
const FILL: f64 = 0.92;

impl PdrTree {
    /// Build a tree from a complete relation by sort-and-pack bulk
    /// loading. Equivalent to [`PdrTree::build`] for queries; much better
    /// page fill (≈ [`crate::Boundary`]-tight, ~92 % of the byte budget).
    pub fn bulk_build<'a, I>(
        domain: Domain,
        config: PdrConfig,
        pool: &mut BufferPool,
        tuples: I,
    ) -> Result<PdrTree>
    where
        I: IntoIterator<Item = (u64, &'a Uda)>,
    {
        config.validate().expect("invalid PDR-tree configuration");
        let mut entries: Vec<LeafEntry> = tuples
            .into_iter()
            .map(|(tid, uda)| LeafEntry {
                tid,
                uda: uda.clone(),
            })
            .collect();
        if entries.is_empty() {
            return PdrTree::new(domain, config, pool);
        }
        // 1. Sort by (mode category, descending mode probability, tid).
        entries.sort_by(|a, b| {
            let ma = a.uda.mode().expect("non-empty");
            let mb = b.uda.mode().expect("non-empty");
            ma.cat
                .cmp(&mb.cat)
                .then_with(|| mb.prob.partial_cmp(&ma.prob).expect("finite"))
                .then_with(|| a.tid.cmp(&b.tid))
        });
        let n = entries.len() as u64;

        // 2. Pack leaves.
        let budget = ((NODE_BUDGET - NODE_HDR) as f64 * FILL) as usize;
        let compression = config.compression;
        let mut level: Vec<ChildEntry> = Vec::new();
        let mut current: Vec<LeafEntry> = Vec::new();
        let mut current_bytes = 0usize;
        let flush_leaf = |pool: &mut BufferPool,
                          batch: &mut Vec<LeafEntry>,
                          level: &mut Vec<ChildEntry>|
         -> Result<()> {
            if batch.is_empty() {
                return Ok(());
            }
            let mut b = Boundary::empty(compression);
            for e in batch.iter() {
                b.merge_uda(&e.uda);
            }
            let pid = pool.allocate()?;
            write_node(pool, pid, &Node::Leaf(std::mem::take(batch)), compression)?;
            level.push(ChildEntry { pid, boundary: b });
            Ok(())
        };
        for e in entries {
            let sz = leaf_entry_size(&e.uda);
            if !current.is_empty()
                && (current_bytes + sz > budget || current.len() >= MAX_NODE_ENTRIES)
            {
                flush_leaf(pool, &mut current, &mut level)?;
                current_bytes = 0;
            }
            current_bytes += sz;
            current.push(e);
        }
        flush_leaf(pool, &mut current, &mut level)?;

        // 3. Pack internal levels until a single root remains.
        let mut depth = 1u32;
        while level.len() > 1 {
            depth += 1;
            let mut next: Vec<ChildEntry> = Vec::new();
            let mut batch: Vec<ChildEntry> = Vec::new();
            let mut bytes = 0usize;
            let flush_internal = |pool: &mut BufferPool,
                                  batch: &mut Vec<ChildEntry>,
                                  next: &mut Vec<ChildEntry>|
             -> Result<()> {
                if batch.is_empty() {
                    return Ok(());
                }
                let mut b = Boundary::empty(compression);
                for c in batch.iter() {
                    b.merge_boundary(&c.boundary);
                }
                let pid = pool.allocate()?;
                write_node(
                    pool,
                    pid,
                    &Node::Internal(std::mem::take(batch)),
                    compression,
                )?;
                next.push(ChildEntry { pid, boundary: b });
                Ok(())
            };
            for c in level {
                let sz = 8 + boundary_size(&c.boundary, compression);
                if !batch.is_empty() && (bytes + sz > budget || batch.len() >= MAX_NODE_ENTRIES) {
                    flush_internal(pool, &mut batch, &mut next)?;
                    bytes = 0;
                }
                bytes += sz;
                batch.push(c);
            }
            flush_internal(pool, &mut batch, &mut next)?;
            level = next;
        }
        let root = level.pop().expect("at least one node").pid;
        Ok(PdrTree::from_raw(root, config, domain, n, depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Compression;
    use uncat_core::{CatId, UdaBuilder};
    use uncat_storage::InMemoryDisk;

    fn synth(n: usize, cats: u32, seed: u64) -> Vec<(u64, Uda)> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n as u64)
            .map(|tid| {
                let nz = 1 + (next() % 3) as usize;
                let mut b = UdaBuilder::new();
                let mut used = std::collections::HashSet::new();
                for _ in 0..nz {
                    let c = (next() % cats as u64) as u32;
                    if used.insert(c) {
                        b.push(CatId(c), 0.05 + (next() % 900) as f32 / 1000.0)
                            .unwrap();
                    }
                }
                (tid, b.finish_normalized().unwrap())
            })
            .collect()
    }

    #[test]
    fn bulk_build_preserves_every_tuple_and_invariants() {
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 256);
        let data = synth(5000, 12, 3);
        let tree = PdrTree::bulk_build(
            Domain::anonymous(12),
            PdrConfig::default(),
            &mut pool,
            data.iter().map(|(t, u)| (*t, u)),
        )
        .unwrap();
        assert_eq!(tree.len(), 5000);
        assert_eq!(tree.check_invariants(&mut pool).unwrap(), 5000);
        let mut seen = std::collections::HashSet::new();
        tree.for_each(&mut pool, |tid, _| {
            assert!(seen.insert(tid));
        })
        .unwrap();
        assert_eq!(seen.len(), 5000);
    }

    #[test]
    fn bulk_build_is_denser_than_incremental() {
        let data = synth(8000, 10, 7);
        let pages_of = |bulk: bool| {
            let store = InMemoryDisk::shared();
            let mut pool = BufferPool::with_capacity(store.clone(), 256);
            let _tree = if bulk {
                PdrTree::bulk_build(
                    Domain::anonymous(10),
                    PdrConfig::default(),
                    &mut pool,
                    data.iter().map(|(t, u)| (*t, u)),
                )
                .unwrap()
            } else {
                PdrTree::build(
                    Domain::anonymous(10),
                    PdrConfig::default(),
                    &mut pool,
                    data.iter().map(|(t, u)| (*t, u)),
                )
                .unwrap()
            };
            pool.flush().unwrap();
            store.num_pages()
        };
        let incremental = pages_of(false);
        let bulk = pages_of(true);
        assert!(
            (bulk as f64) < 0.8 * incremental as f64,
            "bulk ({bulk} pages) should be much denser than incremental ({incremental} pages)"
        );
    }

    #[test]
    fn bulk_and_incremental_answer_identically() {
        let data = synth(2000, 8, 11);
        let store = InMemoryDisk::shared();
        let mut pool = BufferPool::with_capacity(store, 256);
        let a = PdrTree::build(
            Domain::anonymous(8),
            PdrConfig::default(),
            &mut pool,
            data.iter().map(|(t, u)| (*t, u)),
        )
        .unwrap();
        let b = PdrTree::bulk_build(
            Domain::anonymous(8),
            PdrConfig::default(),
            &mut pool,
            data.iter().map(|(t, u)| (*t, u)),
        )
        .unwrap();
        for (i, (_tid, q)) in data.iter().take(8).enumerate() {
            for tau in [0.1, 0.5] {
                let qa = a
                    .petq(&mut pool, &uncat_core::EqQuery::new(q.clone(), tau))
                    .unwrap();
                let qb = b
                    .petq(&mut pool, &uncat_core::EqQuery::new(q.clone(), tau))
                    .unwrap();
                assert_eq!(
                    qa.iter().map(|m| m.tid).collect::<Vec<_>>(),
                    qb.iter().map(|m| m.tid).collect::<Vec<_>>(),
                    "query {i} tau {tau}"
                );
            }
        }
    }

    #[test]
    fn bulk_build_supports_compression_and_later_inserts() {
        let data = synth(1500, 16, 13);
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 256);
        let cfg = PdrConfig {
            compression: Compression::Discretized { bits: 4 },
            ..PdrConfig::default()
        };
        let mut tree = PdrTree::bulk_build(
            Domain::anonymous(16),
            cfg,
            &mut pool,
            data.iter().map(|(t, u)| (*t, u)),
        )
        .unwrap();
        // Incremental inserts continue to work on a bulk-built tree.
        let extra = synth(500, 16, 14);
        for (tid, u) in &extra {
            tree.insert(&mut pool, tid + 10_000, u).unwrap();
        }
        assert_eq!(tree.len(), 2000);
        assert_eq!(tree.check_invariants(&mut pool).unwrap(), 2000);
    }

    #[test]
    fn bulk_build_of_empty_input_is_empty_tree() {
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 16);
        let tree =
            PdrTree::bulk_build(Domain::anonymous(4), PdrConfig::default(), &mut pool, []).unwrap();
        assert!(tree.is_empty());
        assert_eq!(tree.check_invariants(&mut pool).unwrap(), 0);
    }
}
