//! Query correctness: PETQ / top-k / DSTQ over the PDR-tree must agree
//! with in-memory reference evaluation under every configuration —
//! divergence measure, split strategy, and (lossy!) boundary compression.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uncat_core::equality::{eq_prob, meets_threshold};
use uncat_core::query::{sort_matches_asc, sort_matches_desc, DstQuery, EqQuery, Match, TopKQuery};
use uncat_core::{CatId, Divergence, Domain, Uda};
use uncat_pdrtree::{Compression, PdrConfig, PdrTree, SplitStrategy};
use uncat_storage::{BufferPool, InMemoryDisk};

fn random_uda(rng: &mut StdRng, n_cats: u32, max_nz: usize) -> Uda {
    let nz = rng.random_range(1..=max_nz);
    let mut cats: Vec<u32> = (0..n_cats).collect();
    for i in 0..nz.min(cats.len()) {
        let j = rng.random_range(i..cats.len());
        cats.swap(i, j);
    }
    let mut b = uncat_core::UdaBuilder::new();
    for &c in cats.iter().take(nz) {
        b.push(CatId(c), rng.random_range(0.05..1.0f32)).unwrap();
    }
    b.finish_normalized().unwrap()
}

fn dataset(seed: u64, n: usize, n_cats: u32, max_nz: usize) -> Vec<(u64, Uda)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u64)
        .map(|tid| (tid, random_uda(&mut rng, n_cats, max_nz)))
        .collect()
}

fn build(data: &[(u64, Uda)], n_cats: u32, cfg: PdrConfig) -> (PdrTree, BufferPool) {
    let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 150);
    let tree = PdrTree::build(
        Domain::anonymous(n_cats),
        cfg,
        &mut pool,
        data.iter().map(|(t, u)| (*t, u)),
    )
    .unwrap();
    (tree, pool)
}

fn assert_same(a: &[Match], b: &[Match], ctx: &str) {
    assert_eq!(
        a.iter().map(|m| m.tid).collect::<Vec<_>>(),
        b.iter().map(|m| m.tid).collect::<Vec<_>>(),
        "tuple sets differ: {ctx}"
    );
    for (x, y) in a.iter().zip(b) {
        assert!(
            (x.score - y.score).abs() < 1e-9,
            "score differs for tid {}: {ctx}",
            x.tid
        );
    }
}

fn reference_petq(data: &[(u64, Uda)], q: &Uda, tau: f64) -> Vec<Match> {
    let mut out: Vec<Match> = data
        .iter()
        .filter_map(|(tid, t)| {
            let pr = eq_prob(q, t);
            meets_threshold(pr, tau).then_some(Match::new(*tid, pr))
        })
        .collect();
    sort_matches_desc(&mut out);
    out
}

/// Every interesting configuration, exercised by the equivalence tests.
fn configs() -> Vec<PdrConfig> {
    let mut v = Vec::new();
    for dv in Divergence::ALL {
        v.push(PdrConfig {
            divergence: dv,
            ..PdrConfig::default()
        });
    }
    v.push(PdrConfig {
        split: SplitStrategy::TopDown,
        ..PdrConfig::default()
    });
    v.push(PdrConfig {
        compression: Compression::Discretized { bits: 2 },
        ..PdrConfig::default()
    });
    v.push(PdrConfig {
        compression: Compression::Discretized { bits: 4 },
        ..PdrConfig::default()
    });
    v.push(PdrConfig {
        compression: Compression::Signature { width: 4 },
        ..PdrConfig::default()
    });
    v
}

#[test]
fn petq_matches_reference_under_every_config() {
    let data = dataset(101, 800, 10, 4);
    let mut rng = StdRng::seed_from_u64(5);
    let queries: Vec<Uda> = (0..8).map(|_| random_uda(&mut rng, 10, 4)).collect();
    for cfg in configs() {
        let (tree, mut pool) = build(&data, 10, cfg);
        for (qi, q) in queries.iter().enumerate() {
            for &tau in &[0.02, 0.1, 0.3, 0.7] {
                let got = tree.petq(&mut pool, &EqQuery::new(q.clone(), tau)).unwrap();
                let expect = reference_petq(&data, q, tau);
                assert_same(&got, &expect, &format!("{cfg:?}, query {qi}, tau {tau}"));
            }
        }
    }
}

#[test]
fn petq_boundary_threshold_inclusive() {
    let data = dataset(55, 400, 8, 3);
    let mut rng = StdRng::seed_from_u64(2);
    let q = random_uda(&mut rng, 8, 3);
    let probs: Vec<f64> = data
        .iter()
        .map(|(_, t)| eq_prob(&q, t))
        .filter(|&p| p > 0.0)
        .collect();
    let tau = probs[probs.len() / 3];
    let (tree, mut pool) = build(&data, 8, PdrConfig::default());
    let got = tree.petq(&mut pool, &EqQuery::new(q.clone(), tau)).unwrap();
    let expect = reference_petq(&data, &q, tau);
    assert!(!expect.is_empty());
    assert_same(&got, &expect, "threshold equal to an actual probability");
}

#[test]
fn top_k_matches_reference_under_every_config() {
    let data = dataset(77, 600, 10, 4);
    let mut rng = StdRng::seed_from_u64(9);
    let queries: Vec<Uda> = (0..6).map(|_| random_uda(&mut rng, 10, 4)).collect();
    for cfg in configs() {
        let (tree, mut pool) = build(&data, 10, cfg);
        for q in &queries {
            for &k in &[1usize, 7, 50] {
                let mut expect: Vec<Match> = data
                    .iter()
                    .filter_map(|(tid, t)| {
                        let pr = eq_prob(q, t);
                        (pr > 0.0).then_some(Match::new(*tid, pr))
                    })
                    .collect();
                sort_matches_desc(&mut expect);
                expect.truncate(k);
                let got = tree
                    .top_k(&mut pool, &TopKQuery::new(q.clone(), k))
                    .unwrap();
                assert_same(&got, &expect, &format!("{cfg:?}, top-{k}"));
            }
        }
    }
}

#[test]
fn dstq_matches_reference_for_all_divergences() {
    let data = dataset(31, 500, 8, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let (tree, mut pool) = build(&data, 8, PdrConfig::default());
    for _ in 0..6 {
        let q = random_uda(&mut rng, 8, 3);
        for dv in Divergence::ALL {
            for &tau_d in &[0.05, 0.3, 0.9, 1.6] {
                let got = tree
                    .dstq(&mut pool, &DstQuery::new(q.clone(), tau_d, dv))
                    .unwrap();
                let mut expect: Vec<Match> = data
                    .iter()
                    .filter_map(|(tid, t)| {
                        let d = dv.eval(q.entries(), t.entries());
                        (d <= tau_d).then_some(Match::new(*tid, d))
                    })
                    .collect();
                sort_matches_asc(&mut expect);
                assert_same(&got, &expect, &format!("dstq {dv:?} tau_d {tau_d}"));
            }
        }
    }
}

#[test]
fn dstq_respects_compressed_boundaries() {
    // Lossy boundaries widen, so L1/L2 lower bounds shrink — pruning must
    // stay sound. Verify result equivalence under signature compression.
    let data = dataset(13, 400, 12, 3);
    let cfg = PdrConfig {
        compression: Compression::Signature { width: 4 },
        ..PdrConfig::default()
    };
    let (tree, mut pool) = build(&data, 12, cfg);
    let mut rng = StdRng::seed_from_u64(21);
    let q = random_uda(&mut rng, 12, 3);
    for dv in [Divergence::L1, Divergence::L2] {
        let got = tree
            .dstq(&mut pool, &DstQuery::new(q.clone(), 0.4, dv))
            .unwrap();
        let mut expect: Vec<Match> = data
            .iter()
            .filter_map(|(tid, t)| {
                let d = dv.eval(q.entries(), t.entries());
                (d <= 0.4).then_some(Match::new(*tid, d))
            })
            .collect();
        sort_matches_asc(&mut expect);
        assert_same(&got, &expect, &format!("compressed dstq {dv:?}"));
    }
}

#[test]
fn queries_survive_deletes() {
    let data = dataset(99, 500, 8, 3);
    let (mut tree, mut pool) = build(&data, 8, PdrConfig::default());
    for (tid, u) in data.iter().take(250) {
        assert!(tree.delete(&mut pool, *tid, u).unwrap());
    }
    let remaining: Vec<(u64, Uda)> = data.iter().skip(250).cloned().collect();
    let mut rng = StdRng::seed_from_u64(8);
    let q = random_uda(&mut rng, 8, 3);
    for &tau in &[0.05, 0.4] {
        let got = tree.petq(&mut pool, &EqQuery::new(q.clone(), tau)).unwrap();
        let expect = reference_petq(&remaining, &q, tau);
        assert_same(&got, &expect, &format!("after deletes, tau {tau}"));
    }
}

#[test]
fn pruning_reads_fewer_pages_than_full_traversal() {
    // Lemma 2 must actually pay off: a selective query should touch far
    // fewer pages than the whole tree.
    let data = dataset(3, 6000, 20, 3);
    let (tree, mut pool) = build(&data, 20, PdrConfig::default());
    pool.flush().unwrap();

    let mut rng = StdRng::seed_from_u64(1);
    let q = random_uda(&mut rng, 20, 2);

    pool.clear().unwrap();
    pool.reset_stats();
    let mut total_pages = 0u64;
    tree.for_each(&mut pool, |_, _| {}).unwrap();
    total_pages += pool.stats().physical_reads;

    pool.clear().unwrap();
    pool.reset_stats();
    let _ = tree.petq(&mut pool, &EqQuery::new(q, 0.7)).unwrap();
    let query_pages = pool.stats().physical_reads;

    assert!(
        query_pages * 2 < total_pages,
        "selective PETQ read {query_pages} of {total_pages} pages — pruning ineffective"
    );
}
