//! Typed service-level failures.

use std::fmt;

use uncat_storage::StorageError;

/// What can go wrong between a request arriving at the service and a
/// query outcome coming back.
#[derive(Debug)]
pub enum ServiceError {
    /// The request named a tenant the service has never registered.
    UnknownTenant(String),
    /// Admission control turned the request away: the tenant was at its
    /// frame quota *and* its wait queue was full. The caller may retry;
    /// the rejection is counted in the tenant's aggregate
    /// `admission_rejects`.
    Rejected {
        /// The tenant whose quota rejected the request.
        tenant: String,
    },
    /// The query was admitted but its execution failed in the storage or
    /// index layer.
    Storage(StorageError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownTenant(name) => write!(f, "unknown tenant: {name}"),
            ServiceError::Rejected { tenant } => {
                write!(
                    f,
                    "admission rejected: tenant {tenant} is at quota with a full queue"
                )
            }
            ServiceError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ServiceError {
    fn from(e: StorageError) -> ServiceError {
        ServiceError::Storage(e)
    }
}

/// Service-level result alias.
pub type Result<T> = std::result::Result<T, ServiceError>;
