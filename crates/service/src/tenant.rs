//! A tenant: named shards, an admission gate, and aggregate statistics.

use std::sync::Mutex;

use uncat_query::UncertainIndex;
use uncat_storage::trace::LatencyHistogram;
use uncat_storage::QueryMetrics;

use crate::admission::Admission;

/// How a tenant is provisioned.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// Tenant name — the routing key for every request.
    pub name: String,
    /// Buffer frames this tenant may have reserved at once. Each
    /// admitted query reserves [`TenantConfig::frames_per_query`], so
    /// the quota caps the tenant's concurrent queries.
    pub frame_quota: usize,
    /// Requests allowed to wait for capacity once the quota is reached;
    /// arrivals beyond this are rejected.
    pub queue_depth: usize,
    /// Frames one query's working set is charged as (the paper's
    /// per-query pool size).
    pub frames_per_query: usize,
}

impl TenantConfig {
    /// A tenant with the paper's per-query frame budget, room for four
    /// concurrent queries, and a queue of four more.
    pub fn new(name: impl Into<String>) -> TenantConfig {
        TenantConfig {
            name: name.into(),
            frame_quota: 400,
            queue_depth: 4,
            frames_per_query: 100,
        }
    }

    /// Set the frame quota.
    pub fn frame_quota(mut self, quota: usize) -> TenantConfig {
        self.frame_quota = quota;
        self
    }

    /// Set the wait-queue depth.
    pub fn queue_depth(mut self, depth: usize) -> TenantConfig {
        self.queue_depth = depth;
        self
    }

    /// Set the per-query frame charge.
    pub fn frames_per_query(mut self, frames: usize) -> TenantConfig {
        self.frames_per_query = frames;
        self
    }
}

/// A tenant's aggregate view: counters summed over every completed
/// query (admission counters included) plus the end-to-end latency
/// histogram. Snapshots are cheap clones; histograms and counters both
/// merge additively, so per-tenant aggregates sum to service-level ones.
#[derive(Clone, Debug, Default)]
pub struct TenantStats {
    /// Execution counters summed over completed queries, plus this
    /// tenant's `admission_rejects`.
    pub metrics: QueryMetrics,
    /// End-to-end (admission wait included) per-query latency.
    pub latency: LatencyHistogram,
    /// Queries that ran to completion.
    pub completed: u64,
    /// Requests turned away by admission control.
    pub rejected: u64,
}

/// One registered tenant.
pub(crate) struct Tenant {
    pub(crate) config: TenantConfig,
    /// Horizontal partitions of the tenant's dataset; a tuple lives in
    /// shard [`crate::shard_of`]`(tid, shards.len())`.
    pub(crate) shards: Vec<Box<dyn UncertainIndex + Send + Sync>>,
    pub(crate) admission: Admission,
    pub(crate) stats: Mutex<TenantStats>,
}

impl Tenant {
    pub(crate) fn new(
        config: TenantConfig,
        shards: Vec<Box<dyn UncertainIndex + Send + Sync>>,
    ) -> Tenant {
        let admission = Admission::new(config.frame_quota, config.queue_depth);
        Tenant {
            config,
            shards,
            admission,
            stats: Mutex::new(TenantStats::default()),
        }
    }
}
