//! Multi-tenant sharded query service over the uncertain-data indexes.
//!
//! A [`QueryService`] is the long-lived deployment shape of this
//! workspace: many named tenants, each a horizontally partitioned
//! dataset (hash on tuple id, [`shard_of`]) indexed shard-by-shard with
//! either paper index, all reading through **one** lock-striped
//! [`uncat_storage::SharedBufferPool`]. What keeps tenants honest is
//! admission control, not the pool: every query reserves its tenant's
//! per-query frame charge at an [`Admission`] gate before touching a
//! page, waits in a bounded queue when the tenant is at quota, and is
//! rejected (typed, counted) when the queue is full too.
//!
//! Execution is scatter-gather and *exact*: threshold queries
//! concatenate shard results (the shards partition the tuple ids),
//! top-k forms share a rising score floor across shard probes
//! ([`uncat_query::join::SharedFloor`]) and merge-then-truncate — a
//! shard's proven k-th best lower-bounds the merged k-th best, so the
//! floor prunes postings on later shards without changing the answer.
//! Per-shard [`uncat_storage::QueryMetrics`] and latency traces merge
//! additively, exactly like batch execution, so a sharded query's
//! counters are directly comparable to the single-index plan's.
//!
//! See `docs/SERVICE.md` for the full design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod error;
mod service;
mod tenant;

pub use admission::{Admission, AdmitGuard};
pub use error::{Result, ServiceError};
pub use service::{shard_of, QueryService, ServiceConfig, ServiceJoinOutcome, ServiceOutcome};
pub use tenant::{TenantConfig, TenantStats};
