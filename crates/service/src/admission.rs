//! Per-tenant admission control: a counting gate over buffer frames.
//!
//! Each tenant gets a frame quota. A query reserves its working-set
//! frames before it runs and releases them when its guard drops; a
//! request that would push the tenant over quota waits in a bounded
//! queue, and when the queue is full it is rejected outright. The gate
//! is what keeps one hot tenant from pinning the whole shared pool —
//! the pool itself is tenant-blind, so fairness has to be decided here,
//! before a frame is ever touched.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Lock, recovering from poisoning: the guarded state is two counters
/// whose updates are single assignments, so it is always well-formed
/// even if a holder panicked.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Default)]
struct GateState {
    /// Frames currently reserved by running queries.
    in_use: usize,
    /// Requests parked in the wait queue.
    waiting: usize,
}

/// A tenant's admission gate.
///
/// `admit(cost)` reserves `cost` frames and returns a guard that
/// releases them on drop. A request that does not fit waits (up to
/// `queue_depth` concurrent waiters) for capacity, and is rejected with
/// `None` when the queue is already full. A `cost` larger than the
/// whole quota is still admitted — alone — once the tenant is idle, so
/// an undersized quota degrades to serial execution instead of
/// deadlocking.
pub struct Admission {
    quota: usize,
    queue_depth: usize,
    state: Mutex<GateState>,
    freed: Condvar,
}

/// Outcome of an admission attempt that succeeded.
pub struct AdmitGuard<'a> {
    gate: &'a Admission,
    cost: usize,
    waited: bool,
}

impl AdmitGuard<'_> {
    /// Whether this request was parked in the queue before being
    /// admitted (stamped into the query's `admission_waits` counter).
    pub fn waited(&self) -> bool {
        self.waited
    }
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock_recover(&self.gate.state);
        st.in_use = st.in_use.saturating_sub(self.cost);
        drop(st);
        self.gate.freed.notify_all();
    }
}

impl Admission {
    /// A gate admitting up to `quota` reserved frames, with up to
    /// `queue_depth` requests parked beyond that.
    pub fn new(quota: usize, queue_depth: usize) -> Admission {
        Admission {
            quota,
            queue_depth,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
        }
    }

    /// True when `cost` more frames fit under the quota (or the tenant
    /// is idle, the oversize escape hatch).
    fn fits(&self, st: &GateState, cost: usize) -> bool {
        st.in_use == 0 || st.in_use + cost <= self.quota
    }

    /// Reserve `cost` frames, waiting in the queue if necessary.
    /// `None` means rejected: at quota with a full queue.
    pub fn admit(&self, cost: usize) -> Option<AdmitGuard<'_>> {
        let mut st = lock_recover(&self.state);
        if self.fits(&st, cost) {
            st.in_use += cost;
            return Some(AdmitGuard {
                gate: self,
                cost,
                waited: false,
            });
        }
        if st.waiting >= self.queue_depth {
            return None;
        }
        st.waiting += 1;
        while !self.fits(&st, cost) {
            st = self.freed.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.waiting -= 1;
        st.in_use += cost;
        Some(AdmitGuard {
            gate: self,
            cost,
            waited: true,
        })
    }

    /// Frames currently reserved.
    pub fn in_use(&self) -> usize {
        lock_recover(&self.state).in_use
    }

    /// Requests currently parked in the queue.
    pub fn waiting(&self) -> usize {
        lock_recover(&self.state).waiting
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn admits_within_quota_without_waiting() {
        let gate = Admission::new(200, 2);
        let a = gate.admit(100).expect("fits");
        let b = gate.admit(100).expect("fits exactly");
        assert!(!a.waited() && !b.waited());
        assert_eq!(gate.in_use(), 200);
        drop(a);
        assert_eq!(gate.in_use(), 100);
    }

    #[test]
    fn rejects_when_queue_is_full() {
        let gate = Admission::new(100, 0);
        let _held = gate.admit(100).expect("fits");
        assert!(gate.admit(1).is_none(), "no queue, at quota: reject");
    }

    #[test]
    fn oversize_request_runs_alone() {
        let gate = Admission::new(50, 1);
        let big = gate.admit(400).expect("idle tenant admits oversize");
        assert_eq!(gate.in_use(), 400);
        drop(big);
        assert_eq!(gate.in_use(), 0);
    }

    #[test]
    fn queued_request_admits_after_release_and_reports_wait() {
        let gate = Admission::new(100, 1);
        let held = gate.admit(100).expect("fits");
        let released = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                let g = gate.admit(100).expect("queued, then admitted");
                // The release must have happened before we got in.
                assert_eq!(released.load(Ordering::SeqCst), 1);
                assert!(g.waited());
            });
            // Give the waiter time to park, then free capacity.
            while gate.waiting() == 0 {
                std::thread::yield_now();
            }
            released.store(1, Ordering::SeqCst);
            drop(held);
            waiter.join().expect("waiter must not panic");
        });
    }
}
