//! The query service: named tenants, sharded datasets, scatter-gather
//! execution over one shared buffer pool.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

use uncat_core::query::{sort_matches_asc, sort_matches_desc, DstQuery, EqQuery, Match, TopKQuery};
use uncat_core::{Domain, Uda};
use uncat_inverted::{InvertedIndex, Strategy};
use uncat_pdrtree::{PdrConfig, PdrTree};
use uncat_query::join::{parallel_join_with_floor, JoinPair, JoinSpec, SharedFloor};
use uncat_query::parallel::BatchPools;
use uncat_query::{InvertedBackend, UncertainIndex};
use uncat_storage::trace::{Clock, MonotonicClock, Phase, QueryTrace, Tracer};
use uncat_storage::{
    BufferPool, IoStats, QueryMetrics, SharedBufferPool, SharedStore, StorageError,
};

use crate::error::{Result, ServiceError};
use crate::tenant::{Tenant, TenantConfig, TenantStats};

/// Frames used to build a tenant's shards (a private pool per shard
/// build, released immediately after the flush).
const BUILD_FRAMES: usize = 128;

/// Which shard owns tuple `tid` when a dataset is split `shards` ways.
///
/// SplitMix64 on the tid: tenants routinely use dense sequential tids,
/// and a plain modulus would put every residue class on one shard. The
/// function is part of the service's contract — clients that pre-split
/// data (or tests that predict placement) must agree with the service.
pub fn shard_of(tid: u64, shards: usize) -> usize {
    assert!(shards >= 1, "a dataset has at least one shard");
    let mut z = tid.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % shards as u64) as usize
}

/// Service-wide provisioning.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Frames in the one shared lock-striped pool every tenant reads
    /// through.
    pub total_frames: usize,
    /// Lock stripes in the shared pool.
    pub pool_shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            total_frames: 1024,
            pool_shards: 8,
        }
    }
}

/// One select query's result, as the service returns it.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// Matches in the query form's canonical order, exact across every
    /// shard (tid-identical to the unsharded plan).
    pub matches: Vec<Match>,
    /// Per-shard counters merged (additively, as in batch execution),
    /// plus this query's admission stamp.
    pub metrics: QueryMetrics,
    /// Merged per-shard latency trace, when tracing is enabled.
    pub trace: Option<QueryTrace>,
    /// End-to-end wall time, admission wait included.
    pub wall_ns: u64,
}

/// One join's result, as the service returns it.
#[derive(Debug)]
pub struct ServiceJoinOutcome {
    /// Joined pairs in the spec's canonical order.
    pub pairs: Vec<JoinPair>,
    /// Counters merged over every shard's join.
    pub metrics: QueryMetrics,
    /// End-to-end wall time, admission wait included.
    pub wall_ns: u64,
}

/// What one shard probe produced, before the gather.
type ShardPart = (Vec<Match>, QueryMetrics, Option<QueryTrace>);

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A long-lived, multi-tenant query service.
///
/// Every tenant's shards live in one [`SharedStore`] and read through
/// one lock-striped [`SharedBufferPool`]; per-tenant frame quotas (an
/// [`crate::Admission`] gate per tenant) decide *admission*, the pool
/// decides *placement*. Datasets are horizontally partitioned by
/// [`shard_of`]; selects and joins scatter across the shards and gather
/// into the exact single-index answer: threshold forms concatenate
/// (shards partition the tids), and top-k forms merge-then-truncate
/// under a cross-shard [`SharedFloor`] — a shard's proven k-th best
/// lower-bounds the merged k-th best, so seeding later probes with it
/// prunes postings without changing the answer.
pub struct QueryService {
    store: SharedStore,
    pool: Arc<SharedBufferPool>,
    clock: Arc<dyn Clock>,
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    /// Share one rising floor across a top-k query's shard probes.
    /// On by default; the workload driver switches it off to measure
    /// how much pruning the floor buys.
    cross_shard_floor: AtomicBool,
    /// Probe shards with this many threads per query (1 = sequential
    /// scatter, the deterministic default — concurrency normally comes
    /// from concurrent queries, not from inside one).
    scatter_threads: AtomicUsize,
    /// Attach a latency trace to every outcome.
    tracing: AtomicBool,
}

impl QueryService {
    /// A service over `store`, with one shared pool per `config`.
    pub fn new(store: SharedStore, config: ServiceConfig) -> QueryService {
        let pool = SharedBufferPool::new(store.clone(), config.total_frames, config.pool_shards);
        QueryService {
            store,
            pool,
            clock: Arc::new(MonotonicClock::new()),
            tenants: RwLock::new(HashMap::new()),
            cross_shard_floor: AtomicBool::new(true),
            scatter_threads: AtomicUsize::new(1),
            tracing: AtomicBool::new(false),
        }
    }

    /// Replace the wall clock (tests inject a deterministic one).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> QueryService {
        self.clock = clock;
        self
    }

    /// The store tenants' shards are built against.
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// The shared pool's aggregate I/O counters.
    pub fn pool_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Toggle the cross-shard top-k floor (on by default).
    pub fn set_cross_shard_floor(&self, on: bool) {
        self.cross_shard_floor.store(on, Ordering::Relaxed);
    }

    /// Probe shards with `threads` workers per query (1 = sequential).
    pub fn set_scatter_threads(&self, threads: usize) {
        self.scatter_threads
            .store(threads.max(1), Ordering::Relaxed);
    }

    /// Attach a [`QueryTrace`] to every outcome from now on.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// Register a tenant from pre-built shards (any backend mix).
    /// Replaces an existing tenant of the same name.
    pub fn register_tenant(
        &self,
        config: TenantConfig,
        shards: Vec<Box<dyn UncertainIndex + Send + Sync>>,
    ) {
        assert!(!shards.is_empty(), "a tenant needs at least one shard");
        let name = config.name.clone();
        let tenant = Arc::new(Tenant::new(config, shards));
        self.tenants
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name, tenant);
    }

    /// Register a tenant whose dataset is split [`shard_of`]-wise into
    /// `shards` inverted indexes running `strategy`.
    pub fn register_tenant_inverted(
        &self,
        config: TenantConfig,
        domain: &Domain,
        data: &[(u64, Uda)],
        shards: usize,
        strategy: Strategy,
    ) -> Result<()> {
        let boxed = self.build_shards(data, shards, |part, pool| {
            let idx = InvertedIndex::build(domain.clone(), pool, part.iter().copied())?;
            Ok(Box::new(InvertedBackend::with_strategy(idx, strategy)))
        })?;
        self.register_tenant(config, boxed);
        Ok(())
    }

    /// Register a tenant whose dataset is split [`shard_of`]-wise into
    /// `shards` PDR-trees.
    pub fn register_tenant_pdr(
        &self,
        config: TenantConfig,
        domain: &Domain,
        data: &[(u64, Uda)],
        shards: usize,
    ) -> Result<()> {
        let boxed = self.build_shards(data, shards, |part, pool| {
            let tree = PdrTree::build(
                domain.clone(),
                PdrConfig::default(),
                pool,
                part.iter().copied(),
            )?;
            Ok(Box::new(tree))
        })?;
        self.register_tenant(config, boxed);
        Ok(())
    }

    fn build_shards<F>(
        &self,
        data: &[(u64, Uda)],
        shards: usize,
        build: F,
    ) -> Result<Vec<Box<dyn UncertainIndex + Send + Sync>>>
    where
        F: Fn(
            &[(u64, &Uda)],
            &mut BufferPool,
        ) -> std::result::Result<Box<dyn UncertainIndex + Send + Sync>, StorageError>,
    {
        assert!(shards >= 1, "a tenant needs at least one shard");
        let mut parts: Vec<Vec<(u64, &Uda)>> = vec![Vec::new(); shards];
        for (tid, uda) in data {
            parts[shard_of(*tid, shards)].push((*tid, uda));
        }
        let mut boxed = Vec::with_capacity(shards);
        for part in &parts {
            let mut pool = BufferPool::with_capacity(self.store.clone(), BUILD_FRAMES);
            let shard = build(part, &mut pool)?;
            pool.flush()?;
            boxed.push(shard);
        }
        Ok(boxed)
    }

    /// Registered tenant names, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Snapshot a tenant's aggregate statistics.
    pub fn tenant_stats(&self, name: &str) -> Result<TenantStats> {
        let tenant = self.tenant(name)?;
        let stats = lock_recover(&tenant.stats).clone();
        Ok(stats)
    }

    /// A tenant's live admission gate: `(frames in use, queued
    /// requests)`. Lets operators (and tests) observe backpressure
    /// without perturbing it.
    pub fn tenant_admission(&self, name: &str) -> Result<(usize, usize)> {
        let tenant = self.tenant(name)?;
        Ok((tenant.admission.in_use(), tenant.admission.waiting()))
    }

    fn tenant(&self, name: &str) -> Result<Arc<Tenant>> {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownTenant(name.to_string()))
    }

    /// PETQ for `tenant`: exact scatter-gather over its shards.
    pub fn petq(&self, tenant: &str, query: &EqQuery) -> Result<ServiceOutcome> {
        self.run_select(
            tenant,
            |shard, pool, metrics| shard.petq_metered(pool, query, metrics),
            |all| sort_matches_desc(all),
        )
    }

    /// PEQ-top-k for `tenant`: shard probes share a rising floor (when
    /// enabled), then merge-and-truncate to the exact global top k.
    pub fn top_k(&self, tenant: &str, query: &TopKQuery) -> Result<ServiceOutcome> {
        let floor = SharedFloor::new();
        let use_floor = self.cross_shard_floor.load(Ordering::Relaxed);
        self.run_select(
            tenant,
            |shard, pool, metrics| {
                let seed = if use_floor { floor.get() } else { 0.0 };
                let matches = shard.top_k_floored_metered(pool, query, seed, metrics)?;
                if use_floor && matches.len() >= query.k {
                    // This shard's k-th best lower-bounds the merged
                    // k-th best (its tuples are a subset of the union),
                    // so later probes may prune below it.
                    let kth = matches
                        .iter()
                        .map(|m| m.score)
                        .fold(f64::INFINITY, f64::min);
                    floor.raise(kth);
                }
                Ok(matches)
            },
            |all| {
                sort_matches_desc(all);
                all.truncate(query.k);
            },
        )
    }

    /// DSTQ for `tenant`: exact scatter-gather over its shards.
    pub fn dstq(&self, tenant: &str, query: &DstQuery) -> Result<ServiceOutcome> {
        self.run_select(
            tenant,
            |shard, pool, metrics| shard.dstq_metered(pool, query, metrics),
            |all| sort_matches_asc(all),
        )
    }

    /// Join `outer` against every shard of `tenant` (`threads` workers
    /// per shard join, all sharing the service pool). The shard joins
    /// share one [`SharedFloor`] for PEJ-top-k (when enabled), and the
    /// gathered pairs are re-ranked and re-truncated, so the answer is
    /// exactly the unsharded join's.
    pub fn join(
        &self,
        tenant: &str,
        outer: &[(u64, Uda)],
        spec: JoinSpec,
        threads: usize,
    ) -> Result<ServiceJoinOutcome> {
        let tenant = self.tenant(tenant)?;
        let started = self.clock.now_ns();
        let cost = tenant.config.frames_per_query * threads.max(1);
        let guard = self.admit(&tenant, cost)?;
        let use_floor = self.cross_shard_floor.load(Ordering::Relaxed);
        let shared_floor = SharedFloor::new();
        let pools = BatchPools::Shared(self.pool.clone());

        let mut pairs = Vec::new();
        let mut metrics = QueryMetrics::new();
        metrics.admission_waits = u64::from(guard.waited());
        for shard in &tenant.shards {
            let fresh = SharedFloor::new();
            let floor = if use_floor { &shared_floor } else { &fresh };
            let out =
                parallel_join_with_floor(outer, shard, &self.store, &pools, spec, threads, floor)?;
            pairs.extend(out.pairs);
            metrics.merge(&out.metrics);
        }
        drop(guard);
        match spec {
            JoinSpec::Petj { .. } => uncat_query::join::sort_pairs_desc(&mut pairs),
            JoinSpec::PejTopK { k } => {
                uncat_query::join::sort_pairs_desc(&mut pairs);
                pairs.truncate(k);
            }
            JoinSpec::Dstj { .. } => uncat_query::join::sort_pairs_asc(&mut pairs),
        }
        let wall_ns = self.clock.now_ns().saturating_sub(started);
        self.record(&tenant, &metrics, wall_ns);
        Ok(ServiceJoinOutcome {
            pairs,
            metrics,
            wall_ns,
        })
    }

    /// Admit one request or count its rejection.
    fn admit<'t>(
        &self,
        tenant: &'t Arc<Tenant>,
        cost: usize,
    ) -> Result<crate::admission::AdmitGuard<'t>> {
        match tenant.admission.admit(cost) {
            Some(guard) => Ok(guard),
            None => {
                let mut stats = lock_recover(&tenant.stats);
                stats.rejected += 1;
                stats.metrics.admission_rejects += 1;
                Err(ServiceError::Rejected {
                    tenant: tenant.config.name.clone(),
                })
            }
        }
    }

    /// Fold a completed query into the tenant's aggregates.
    fn record(&self, tenant: &Tenant, metrics: &QueryMetrics, wall_ns: u64) {
        let mut stats = lock_recover(&tenant.stats);
        stats.metrics.merge(metrics);
        stats.latency.record(wall_ns);
        stats.completed += 1;
    }

    /// The select scatter-gather skeleton: admit, probe every shard
    /// (each against a fresh handle on the shared pool, metering into a
    /// fresh [`QueryMetrics`]), merge counters and traces additively,
    /// and put the gathered matches into canonical order.
    fn run_select<F, G>(&self, name: &str, probe: F, gather: G) -> Result<ServiceOutcome>
    where
        F: Fn(
                &dyn UncertainIndex,
                &mut BufferPool,
                &mut QueryMetrics,
            ) -> std::result::Result<Vec<Match>, StorageError>
            + Sync,
        G: FnOnce(&mut Vec<Match>),
    {
        let tenant = self.tenant(name)?;
        let started = self.clock.now_ns();
        let guard = self.admit(&tenant, tenant.config.frames_per_query)?;
        let waited = guard.waited();
        let parts = self.scatter(&tenant, &probe)?;
        drop(guard);

        let mut matches = Vec::new();
        let mut metrics = QueryMetrics::new();
        metrics.admission_waits = u64::from(waited);
        let mut trace: Option<QueryTrace> = None;
        for (shard_matches, shard_metrics, shard_trace) in parts {
            matches.extend(shard_matches);
            metrics.merge(&shard_metrics);
            if let Some(t) = shard_trace {
                trace.get_or_insert_with(QueryTrace::default).merge(&t);
            }
        }
        let mut gathered = matches;
        gather(&mut gathered);
        let wall_ns = self.clock.now_ns().saturating_sub(started);
        self.record(&tenant, &metrics, wall_ns);
        Ok(ServiceOutcome {
            matches: gathered,
            metrics,
            trace,
            wall_ns,
        })
    }

    /// Probe every shard, sequentially or across workers, preserving
    /// shard order in the returned parts (so the merge is deterministic
    /// however the probes were scheduled).
    fn scatter<F>(&self, tenant: &Tenant, probe: &F) -> Result<Vec<ShardPart>>
    where
        F: Fn(
                &dyn UncertainIndex,
                &mut BufferPool,
                &mut QueryMetrics,
            ) -> std::result::Result<Vec<Match>, StorageError>
            + Sync,
    {
        let probe_one =
            |shard: &dyn UncertainIndex| -> std::result::Result<ShardPart, StorageError> {
                let mut pool = BufferPool::from_handle(self.pool.handle());
                if self.tracing.load(Ordering::Relaxed) {
                    pool.set_tracer(Tracer::enabled(self.clock.clone()));
                }
                let root = pool.trace_begin(Phase::Query);
                let mut metrics = QueryMetrics::new();
                let matches = probe(shard, &mut pool, &mut metrics)?;
                pool.trace_end(root);
                metrics.io = pool.stats();
                Ok((matches, metrics, pool.take_trace()))
            };

        let threads = self.scatter_threads.load(Ordering::Relaxed).max(1);
        if threads <= 1 || tenant.shards.len() <= 1 {
            let mut parts = Vec::with_capacity(tenant.shards.len());
            for shard in &tenant.shards {
                parts.push(probe_one(shard.as_ref())?);
            }
            return Ok(parts);
        }

        // Parallel scatter: a shared cursor hands out shard indexes,
        // results land in shard order, and a panicking probe degrades
        // to a typed error exactly like the batch machinery.
        let mut slots: Vec<Option<std::result::Result<ShardPart, StorageError>>> =
            Vec::with_capacity(tenant.shards.len());
        slots.resize_with(tenant.shards.len(), || None);
        let cells: Vec<Mutex<&mut Option<std::result::Result<ShardPart, StorageError>>>> =
            slots.iter_mut().map(Mutex::new).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(tenant.shards.len()) {
                scope.spawn(|| {
                    let worker = AssertUnwindSafe(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tenant.shards.len() {
                            break;
                        }
                        **lock_recover(&cells[i]) = Some(probe_one(tenant.shards[i].as_ref()));
                    });
                    let _ = catch_unwind(worker);
                });
            }
        });
        drop(cells);
        slots
            .into_iter()
            .map(|slot| slot.unwrap_or(Err(StorageError::Poisoned)))
            .collect::<std::result::Result<Vec<ShardPart>, StorageError>>()
            .map_err(ServiceError::from)
    }
}
