//! Backend equivalence: inverted index, PDR-tree, and scan baseline must
//! return identical results for every query family, and the joins must
//! agree with pairwise reference evaluation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uncat_core::equality::eq_prob;
use uncat_core::query::{DstQuery, EqQuery, TopKQuery};
use uncat_core::{CatId, Divergence, Domain, Uda};
use uncat_inverted::InvertedIndex;
use uncat_pdrtree::{PdrConfig, PdrTree};
use uncat_query::join::{
    block_nested_loop_petj, index_dstj, index_nested_loop_petj, index_top_k_pej, JoinPair,
};
use uncat_query::{Executor, InvertedBackend, ScanBaseline, UncertainIndex};
use uncat_storage::{BufferPool, InMemoryDisk, SharedStore};

fn random_uda(rng: &mut StdRng, n_cats: u32, max_nz: usize) -> Uda {
    let nz = rng.random_range(1..=max_nz);
    let mut cats: Vec<u32> = (0..n_cats).collect();
    for i in 0..nz.min(cats.len()) {
        let j = rng.random_range(i..cats.len());
        cats.swap(i, j);
    }
    let mut b = uncat_core::UdaBuilder::new();
    for &c in cats.iter().take(nz) {
        b.push(CatId(c), rng.random_range(0.05..1.0f32)).unwrap();
    }
    b.finish_normalized().unwrap()
}

struct World {
    data: Vec<(u64, Uda)>,
    store: SharedStore,
    inverted: InvertedBackend,
    pdr: PdrTree,
    scan: ScanBaseline,
}

fn world(seed: u64, n: usize, cats: u32, max_nz: usize) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<(u64, Uda)> = (0..n as u64)
        .map(|tid| (tid, random_uda(&mut rng, cats, max_nz)))
        .collect();
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 150);
    let inverted = InvertedBackend::new(
        InvertedIndex::build(
            Domain::anonymous(cats),
            &mut pool,
            data.iter().map(|(t, u)| (*t, u)),
        )
        .unwrap(),
    );
    let pdr = PdrTree::build(
        Domain::anonymous(cats),
        PdrConfig::default(),
        &mut pool,
        data.iter().map(|(t, u)| (*t, u)),
    )
    .unwrap();
    let scan = ScanBaseline::build(&mut pool, data.iter().map(|(t, u)| (*t, u))).unwrap();
    pool.flush().unwrap();
    World {
        data,
        store,
        inverted,
        pdr,
        scan,
    }
}

#[test]
fn all_backends_agree_on_every_query_family() {
    let w = world(1, 700, 10, 4);
    let mut rng = StdRng::seed_from_u64(2);
    let mut pool = BufferPool::with_capacity(w.store.clone(), 150);
    for _ in 0..10 {
        let q = random_uda(&mut rng, 10, 4);
        for &tau in &[0.05, 0.2, 0.5] {
            let query = EqQuery::new(q.clone(), tau);
            let a = w.scan.petq(&mut pool, &query).unwrap();
            let b = w.inverted.petq(&mut pool, &query).unwrap();
            let c = w.pdr.petq(&mut pool, &query).unwrap();
            assert_eq!(
                a.iter().map(|m| m.tid).collect::<Vec<_>>(),
                b.iter().map(|m| m.tid).collect::<Vec<_>>(),
                "inverted disagrees with scan at tau {tau}"
            );
            assert_eq!(
                a.iter().map(|m| m.tid).collect::<Vec<_>>(),
                c.iter().map(|m| m.tid).collect::<Vec<_>>(),
                "pdr-tree disagrees with scan at tau {tau}"
            );
        }
        for &k in &[3usize, 25] {
            let query = TopKQuery::new(q.clone(), k);
            let a = w.scan.top_k(&mut pool, &query).unwrap();
            let b = w.inverted.top_k(&mut pool, &query).unwrap();
            let c = w.pdr.top_k(&mut pool, &query).unwrap();
            assert_eq!(
                a.iter().map(|m| m.tid).collect::<Vec<_>>(),
                b.iter().map(|m| m.tid).collect::<Vec<_>>()
            );
            assert_eq!(
                a.iter().map(|m| m.tid).collect::<Vec<_>>(),
                c.iter().map(|m| m.tid).collect::<Vec<_>>()
            );
        }
        for dv in Divergence::ALL {
            let query = DstQuery::new(q.clone(), 0.35, dv);
            let a = w.scan.dstq(&mut pool, &query).unwrap();
            let b = w.inverted.dstq(&mut pool, &query).unwrap();
            let c = w.pdr.dstq(&mut pool, &query).unwrap();
            assert_eq!(
                a.iter().map(|m| m.tid).collect::<Vec<_>>(),
                b.iter().map(|m| m.tid).collect::<Vec<_>>()
            );
            assert_eq!(
                a.iter().map(|m| m.tid).collect::<Vec<_>>(),
                c.iter().map(|m| m.tid).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn ds_top_k_agrees_across_backends() {
    let w = world(13, 500, 10, 4);
    let mut rng = StdRng::seed_from_u64(14);
    let mut pool = BufferPool::with_capacity(w.store.clone(), 150);
    for _ in 0..6 {
        let q = random_uda(&mut rng, 10, 4);
        for dv in Divergence::ALL {
            for &k in &[1usize, 10, 60] {
                let query = uncat_core::query::DsTopKQuery::new(q.clone(), k, dv);
                let a = w.scan.ds_top_k(&mut pool, &query).unwrap();
                let b = w.inverted.ds_top_k(&mut pool, &query).unwrap();
                let c = w.pdr.ds_top_k(&mut pool, &query).unwrap();
                let ids =
                    |v: &[uncat_core::query::Match]| v.iter().map(|m| m.tid).collect::<Vec<_>>();
                assert_eq!(ids(&a), ids(&b), "inverted ds-top-{k} {dv:?}");
                assert_eq!(ids(&a), ids(&c), "pdr ds-top-{k} {dv:?}");
                assert_eq!(a.len(), k.min(w.data.len()));
                // Ascending divergence order.
                assert!(a.windows(2).all(|w| w[0].score <= w[1].score + 1e-12));
            }
        }
    }
}

#[test]
fn executor_charges_io_to_fresh_pools() {
    let w = world(3, 2000, 12, 3);
    let exec = Executor::new(w.pdr, w.store.clone());
    let mut rng = StdRng::seed_from_u64(4);
    let q = random_uda(&mut rng, 12, 3);
    let out1 = exec.petq(&EqQuery::new(q.clone(), 0.3)).unwrap();
    let out2 = exec.petq(&EqQuery::new(q.clone(), 0.3)).unwrap();
    assert_eq!(
        out1.matches.len(),
        out2.matches.len(),
        "same query, same results"
    );
    assert_eq!(
        out1.reads(),
        out2.reads(),
        "fresh pool each time ⇒ identical cold I/O"
    );
    assert!(out1.reads() > 0);
    assert!(out1.selectivity(2000) <= 1.0);
}

fn reference_petj(r: &[(u64, Uda)], s: &[(u64, Uda)], tau: f64) -> Vec<JoinPair> {
    let mut out = Vec::new();
    for (lt, lu) in r {
        for (rt, ru) in s {
            let pr = eq_prob(lu, ru);
            if uncat_core::equality::meets_threshold(pr, tau) {
                out.push(JoinPair {
                    left: *lt,
                    right: *rt,
                    score: pr,
                });
            }
        }
    }
    uncat_query::join::sort_pairs_desc(&mut out);
    out
}

#[test]
fn petj_plans_match_reference() {
    let w = world(5, 300, 8, 3);
    let mut rng = StdRng::seed_from_u64(6);
    let outer: Vec<(u64, Uda)> = (0..20u64)
        .map(|i| (1000 + i, random_uda(&mut rng, 8, 3)))
        .collect();
    let mut pool = BufferPool::with_capacity(w.store.clone(), 150);
    for &tau in &[0.15, 0.4] {
        let expect = reference_petj(&outer, &w.data, tau);
        let inl_inv = index_nested_loop_petj(&outer, &w.inverted, &mut pool, tau).unwrap();
        let inl_pdr = index_nested_loop_petj(&outer, &w.pdr, &mut pool, tau).unwrap();
        let bnl = block_nested_loop_petj(&outer, &w.scan, &mut pool, tau).unwrap();
        for (name, got) in [
            ("inl-inverted", &inl_inv),
            ("inl-pdr", &inl_pdr),
            ("bnl", &bnl),
        ] {
            assert_eq!(
                got.iter().map(|p| (p.left, p.right)).collect::<Vec<_>>(),
                expect.iter().map(|p| (p.left, p.right)).collect::<Vec<_>>(),
                "{name} at tau {tau}"
            );
        }
    }
}

#[test]
fn pej_top_k_matches_reference() {
    let w = world(7, 300, 8, 3);
    let mut rng = StdRng::seed_from_u64(8);
    let outer: Vec<(u64, Uda)> = (0..15u64)
        .map(|i| (2000 + i, random_uda(&mut rng, 8, 3)))
        .collect();
    let mut pool = BufferPool::with_capacity(w.store.clone(), 150);
    for &k in &[1usize, 10, 40] {
        let mut expect = reference_petj(&outer, &w.data, 0.0);
        expect.retain(|p| p.score > 0.0);
        expect.truncate(k);
        let got = index_top_k_pej(&outer, &w.pdr, &mut pool, k).unwrap();
        assert_eq!(
            got.iter().map(|p| (p.left, p.right)).collect::<Vec<_>>(),
            expect.iter().map(|p| (p.left, p.right)).collect::<Vec<_>>(),
            "top-{k} join"
        );
    }
}

#[test]
fn per_outer_top_k_gives_each_outer_its_best_partners() {
    let w = world(41, 200, 8, 3);
    let mut rng = StdRng::seed_from_u64(42);
    let outer: Vec<(u64, Uda)> = (0..5u64)
        .map(|i| (5000 + i, random_uda(&mut rng, 8, 3)))
        .collect();
    let mut pool = BufferPool::with_capacity(w.store.clone(), 150);
    let per_outer = uncat_query::join::index_top_k_per_outer(&outer, &w.pdr, &mut pool, 3).unwrap();
    assert_eq!(per_outer.len(), 5);
    for ((ltid, best), (otid, ouda)) in per_outer.iter().zip(&outer) {
        assert_eq!(ltid, otid);
        let mut expect: Vec<(f64, u64)> = w
            .data
            .iter()
            .map(|(tid, t)| (eq_prob(ouda, t), *tid))
            .filter(|&(p, _)| p > 0.0)
            .collect();
        expect.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then_with(|| a.1.cmp(&b.1)));
        expect.truncate(3);
        assert_eq!(
            best.iter().map(|m| m.tid).collect::<Vec<_>>(),
            expect.iter().map(|&(_, tid)| tid).collect::<Vec<_>>(),
            "outer {otid}"
        );
    }
}

#[test]
fn window_petq_on_scan_matches_direct_computation() {
    let w = world(43, 300, 12, 3);
    let mut pool = BufferPool::with_capacity(w.store.clone(), 150);
    let q = w.data[0].1.clone();
    for window in [0u32, 1, 3] {
        let got = w.scan.window_petq(&mut pool, &q, window, 0.3).unwrap();
        let expect: Vec<u64> = {
            let mut v: Vec<(f64, u64)> = w
                .data
                .iter()
                .map(|(tid, t)| (uncat_core::ordered::pr_within(&q, t, window), *tid))
                .filter(|&(p, _)| uncat_core::equality::meets_threshold(p, 0.3))
                .collect();
            v.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then_with(|| a.1.cmp(&b.1)));
            v.into_iter().map(|(_, tid)| tid).collect()
        };
        assert_eq!(
            got.iter().map(|m| m.tid).collect::<Vec<_>>(),
            expect,
            "window {window}"
        );
        if window == 0 {
            // c = 0 is plain PETQ.
            let plain = w
                .scan
                .petq(&mut pool, &EqQuery::new(q.clone(), 0.3))
                .unwrap();
            assert_eq!(
                got.iter().map(|m| m.tid).collect::<Vec<_>>(),
                plain.iter().map(|m| m.tid).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn dstj_matches_reference() {
    let w = world(9, 250, 8, 3);
    let mut rng = StdRng::seed_from_u64(10);
    let outer: Vec<(u64, Uda)> = (0..10u64)
        .map(|i| (3000 + i, random_uda(&mut rng, 8, 3)))
        .collect();
    let mut pool = BufferPool::with_capacity(w.store.clone(), 150);
    for dv in [Divergence::L1, Divergence::L2] {
        let got = index_dstj(&outer, &w.pdr, &mut pool, 0.3, dv).unwrap();
        let mut expect = Vec::new();
        for (lt, lu) in &outer {
            for (rt, ru) in &w.data {
                let d = dv.eval(lu.entries(), ru.entries());
                if d <= 0.3 {
                    expect.push((d, *lt, *rt));
                }
            }
        }
        expect.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert_eq!(
            got.iter()
                .map(|p| (p.left, p.right))
                .collect::<std::collections::HashSet<_>>(),
            expect
                .iter()
                .map(|&(_, l, r)| (l, r))
                .collect::<std::collections::HashSet<_>>(),
            "dstj {dv:?}"
        );
    }
}
