//! Cost-based backend-and-strategy planning (DESIGN.md §6h).
//!
//! The inverted index plans *within* itself — [`Strategy::Auto`] asks
//! the cached [`CostStats`] for the cheapest of the five PETQ
//! strategies and falls back adaptively mid-query. This module plans
//! one level up, *across* execution backends: given whatever statistics
//! are available (inverted cost statistics, PDR-tree header statistics,
//! a buffer-residency sample), a [`Planner`] predicts counters for each
//! candidate backend and picks the cheapest [`Plan`] per query kind.
//!
//! Everything here is zero-I/O. The statistics are collected once —
//! at build, load, or checkpoint ([`crate::MutableBackend::refresh_stats`])
//! — and deliberately go stale between refreshes: staleness only skews
//! predictions, never results, and the adaptive executor inside
//! [`Strategy::Auto`] is the safety net when a stale prediction loses.
//!
//! The non-PETQ predictors are deliberately crude: monotone in the
//! obvious query parameter (`k`, `τ_d`), pinned to the same
//! [`CostPrediction`] vocabulary, and documented as order-of-magnitude.
//! The planner-vs-oracle harness (`tests/planner.rs`) holds the PETQ
//! path to a pinned factor of the per-query best; the others only have
//! to rank backends sensibly.

use uncat_core::query::{DstQuery, EqQuery, TopKQuery};
use uncat_inverted::{CostPrediction, CostStats, InvertedIndex, Strategy, ENTRIES_PER_PAGE};
use uncat_pdrtree::{PdrCostStats, PdrTree};
use uncat_storage::{PageId, SharedBufferPool};

/// Assumed per-leaf entry count when converting PDR-tree leaf estimates
/// into touched-leaf counts (mirrors the pin inside
/// [`PdrTree::cost_stats`]).
const PDR_LEAF_ENTRIES: u64 = 32;

/// The statistics a [`Planner`] consults. All fields are point-in-time
/// samples; none require I/O to collect.
#[derive(Debug, Clone, Default)]
pub struct IndexStats {
    /// Indexed tuples (from whichever backend was sampled).
    pub tuples: u64,
    /// Pages a full scan of the tuple store would read.
    pub heap_pages: u64,
    /// Inverted-index cost statistics, when that backend is available.
    pub inverted: Option<CostStats>,
    /// PDR-tree header statistics, when that backend is available.
    pub pdr: Option<PdrCostStats>,
    /// Sampled fraction of the index's pages resident in the shared
    /// buffer pool, in `[0, 1]`. Scales down predicted physical reads:
    /// a warm pool makes every plan cheaper, so the discount is applied
    /// uniformly rather than per backend.
    pub residency: f64,
}

/// Which backend a [`Plan`] executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedBackend {
    /// The inverted index, with the strategy its own planner picked
    /// (always a fixed strategy, never [`Strategy::Auto`] itself).
    Inverted(Strategy),
    /// The PDR-tree.
    PdrTree,
    /// The full-scan baseline.
    Scan,
}

impl PlannedBackend {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PlannedBackend::Inverted(_) => "inverted",
            PlannedBackend::PdrTree => "pdr-tree",
            PlannedBackend::Scan => "scan",
        }
    }
}

/// A planning decision: the chosen backend plus the counter prediction
/// that justified it.
#[derive(Debug, Clone, Copy)]
pub struct Plan {
    /// Where to execute.
    pub backend: PlannedBackend,
    /// The predicted counters for that choice.
    pub prediction: CostPrediction,
}

/// A cost-based planner over one or more execution backends.
pub struct Planner {
    stats: IndexStats,
}

impl Planner {
    /// Plan from explicit statistics (deserialized, synthetic, or
    /// assembled by hand in tests).
    pub fn from_stats(stats: IndexStats) -> Planner {
        Planner { stats }
    }

    /// Plan over an inverted index, sampling its cached cost statistics
    /// (collecting them first if no build/load/checkpoint has yet).
    pub fn for_inverted(idx: &InvertedIndex) -> Planner {
        let cost = idx.cost_stats().clone();
        Planner {
            stats: IndexStats {
                tuples: cost.tuples,
                heap_pages: cost.heap_pages,
                inverted: Some(cost),
                pdr: None,
                residency: 0.0,
            },
        }
    }

    /// Plan over a PDR-tree, sampling its header statistics. The tree
    /// stores tuples in its leaves, so the "heap" a scan would read is
    /// the tree's own page estimate.
    pub fn for_pdr(tree: &PdrTree) -> Planner {
        let cost = tree.cost_stats();
        Planner {
            stats: IndexStats {
                tuples: cost.entries,
                heap_pages: cost.nodes_est,
                inverted: None,
                pdr: Some(cost),
                residency: 0.0,
            },
        }
    }

    /// Plan over both paper indexes at once.
    pub fn for_both(idx: &InvertedIndex, tree: &PdrTree) -> Planner {
        let mut p = Planner::for_inverted(idx);
        p.stats.pdr = Some(tree.cost_stats());
        p
    }

    /// Sample how much of the index is already resident in a shared
    /// pool, probing every `stride`-th of `pages` (see
    /// [`SharedBufferPool::residency_fraction`]). Callers typically pass
    /// [`InvertedIndex::page_ids`].
    pub fn observe_residency(&mut self, pool: &SharedBufferPool, pages: &[PageId], stride: usize) {
        self.stats.residency = pool.residency_fraction(pages, stride);
    }

    /// The statistics backing this planner.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// Discount a prediction's physical reads by the sampled residency:
    /// resident pages cost a hit, not a read.
    fn discount(&self, mut p: CostPrediction) -> CostPrediction {
        let keep = (1.0 - self.stats.residency.clamp(0.0, 1.0)).max(0.0);
        p.physical_reads = (p.physical_reads as f64 * keep).ceil() as u64;
        p
    }

    /// Full-scan baseline prediction: every heap page read, every tuple
    /// scored in place (no random verification accesses, so the whole
    /// cost is the sequential read).
    fn predict_scan(&self) -> CostPrediction {
        CostPrediction {
            postings_scanned: 0,
            blocks_decoded: 0,
            candidates_verified: 0,
            physical_reads: self.stats.heap_pages,
        }
    }

    /// PDR-tree prediction from a touched-leaf fraction: one descent
    /// (`depth` reads) plus the visited share of the leaves. The tree
    /// answers from its leaves, so no verification reads are added.
    fn predict_pdr(&self, pdr: &PdrCostStats, leaf_frac: f64) -> CostPrediction {
        let leaves = (pdr.leaves_est as f64 * leaf_frac.clamp(0.0, 1.0)).ceil() as u64;
        CostPrediction {
            postings_scanned: 0,
            blocks_decoded: 0,
            candidates_verified: 0,
            physical_reads: u64::from(pdr.depth) + leaves.max(1),
        }
    }

    /// Fold a candidate into the running best (strict `<`, so earlier
    /// candidates win ties — the caller lists backends in preference
    /// order).
    fn better(best: &mut Plan, backend: PlannedBackend, prediction: CostPrediction) {
        if prediction.cost() < best.prediction.cost() {
            *best = Plan {
                backend,
                prediction,
            };
        }
    }

    /// Plan a PETQ: the inverted index's own strategy pick, the
    /// PDR-tree (touched leaves shrink as τ grows — a higher threshold
    /// prunes more subtrees), and the scan baseline.
    pub fn plan_petq(&self, query: &EqQuery) -> Plan {
        let mut best = Plan {
            backend: PlannedBackend::Scan,
            prediction: self.discount(self.predict_scan()),
        };
        if let Some(pdr) = &self.stats.pdr {
            let frac = (1.0 - query.tau).clamp(0.05, 1.0);
            Self::better(
                &mut best,
                PlannedBackend::PdrTree,
                self.discount(self.predict_pdr(pdr, frac)),
            );
        }
        if let Some(inv) = &self.stats.inverted {
            let (strategy, pred) = inv.plan_petq(query);
            Self::better(
                &mut best,
                PlannedBackend::Inverted(strategy),
                self.discount(pred),
            );
        }
        best
    }

    /// Plan a PEQ-top-k. Crude inverted model: the dynamic threshold
    /// settles after a drain proportional to `k`, so each query list
    /// contributes at most `8k` postings; at most `8k` candidates are
    /// verified, batched per heap page.
    pub fn plan_top_k(&self, query: &TopKQuery) -> Plan {
        let mut best = Plan {
            backend: PlannedBackend::Scan,
            prediction: self.discount(self.predict_scan()),
        };
        let k = query.k as u64;
        if let Some(pdr) = &self.stats.pdr {
            // Roughly the leaves holding the k winners, with a 4×
            // expansion for the frontier the search keeps open.
            let frac = (4.0 * k as f64 / (pdr.leaves_est * PDR_LEAF_ENTRIES).max(1) as f64)
                .clamp(0.05, 1.0);
            Self::better(
                &mut best,
                PlannedBackend::PdrTree,
                self.discount(self.predict_pdr(pdr, frac)),
            );
        }
        if let Some(inv) = &self.stats.inverted {
            let drain_cap = 8 * k.max(1);
            let postings: u64 = query
                .q
                .iter()
                .filter_map(|(cat, _)| inv.cats.get(&cat))
                .map(|c| c.len.min(drain_cap))
                .sum();
            let verified = drain_cap.min(inv.tuples);
            let pred = CostPrediction {
                postings_scanned: postings,
                blocks_decoded: 0,
                candidates_verified: verified,
                physical_reads: postings.div_ceil(ENTRIES_PER_PAGE) + verified.min(inv.heap_pages),
            };
            Self::better(
                &mut best,
                PlannedBackend::Inverted(Strategy::Auto),
                self.discount(pred),
            );
        }
        best
    }

    /// Plan a DSTQ. The PDR-tree is this query's home turf: touched
    /// leaves grow with the divergence threshold (`τ_d / (τ_d + 1)`, a
    /// monotone map of `[0, ∞)` onto `[0, 1)`). The inverted model is
    /// brute-like: the query's support lists are scanned end to end and
    /// the collected candidates verified.
    pub fn plan_dstq(&self, query: &DstQuery) -> Plan {
        let mut best = Plan {
            backend: PlannedBackend::Scan,
            prediction: self.discount(self.predict_scan()),
        };
        if let Some(pdr) = &self.stats.pdr {
            let t = query.tau_d.max(0.0);
            let frac = (t / (t + 1.0)).clamp(0.05, 1.0);
            Self::better(
                &mut best,
                PlannedBackend::PdrTree,
                self.discount(self.predict_pdr(pdr, frac)),
            );
        }
        if let Some(inv) = &self.stats.inverted {
            let postings: u64 = query
                .q
                .iter()
                .filter_map(|(cat, _)| inv.cats.get(&cat))
                .map(|c| c.len)
                .sum();
            let verified = postings.min(inv.tuples);
            let pred = CostPrediction {
                postings_scanned: postings,
                blocks_decoded: 0,
                candidates_verified: verified,
                physical_reads: postings.div_ceil(ENTRIES_PER_PAGE) + verified.min(inv.heap_pages),
            };
            Self::better(
                &mut best,
                PlannedBackend::Inverted(Strategy::Auto),
                self.discount(pred),
            );
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncat_core::{CatId, Uda};

    fn synthetic_inverted(tuples: u64, heap_pages: u64) -> CostStats {
        let mut s = CostStats {
            tuples,
            heap_pages,
            block_pages: heap_pages,
            ..CostStats::default()
        };
        for cat in 0..4u32 {
            let mut c = uncat_inverted::CatCostStats {
                len: tuples / 4,
                blocks: (tuples / 64).max(1) as u32,
                max_q: uncat_inverted::PROB_SCALE as u16,
                block_hist: [0; uncat_inverted::COST_BUCKETS],
                entry_hist: [0; uncat_inverted::COST_BUCKETS],
            };
            let per = c.len / uncat_inverted::COST_BUCKETS as u64;
            c.entry_hist = [per; uncat_inverted::COST_BUCKETS];
            c.block_hist = [(c.blocks / 16).max(1); uncat_inverted::COST_BUCKETS];
            s.cats.insert(CatId(cat), c);
        }
        s
    }

    fn q(tau: f64) -> EqQuery {
        EqQuery::new(Uda::certain(CatId(0)), tau)
    }

    #[test]
    fn petq_prefers_an_index_over_the_scan() {
        let planner = Planner::from_stats(IndexStats {
            tuples: 100_000,
            heap_pages: 5_000,
            inverted: Some(synthetic_inverted(100_000, 5_000)),
            pdr: None,
            residency: 0.0,
        });
        let plan = planner.plan_petq(&q(0.5));
        assert!(matches!(plan.backend, PlannedBackend::Inverted(_)));
        assert!(plan.prediction.cost() < planner.discount(planner.predict_scan()).cost());
    }

    #[test]
    fn scan_wins_when_it_is_genuinely_cheaper() {
        // A tiny heap under a huge index: one page of tuples, but the
        // (synthetic) statistics claim enormous lists.
        let mut inv = synthetic_inverted(1_000_000, 1);
        inv.heap_pages = 1;
        let planner = Planner::from_stats(IndexStats {
            tuples: 1_000_000,
            heap_pages: 1,
            inverted: Some(inv),
            pdr: None,
            residency: 0.0,
        });
        let plan = planner.plan_petq(&q(0.01));
        assert_eq!(plan.backend, PlannedBackend::Scan);
    }

    #[test]
    fn residency_discounts_reads_monotonically() {
        let stats = IndexStats {
            tuples: 10_000,
            heap_pages: 500,
            inverted: Some(synthetic_inverted(10_000, 500)),
            pdr: None,
            residency: 0.0,
        };
        let cold = Planner::from_stats(stats.clone()).plan_petq(&q(0.3));
        let warm = Planner::from_stats(IndexStats {
            residency: 0.9,
            ..stats
        })
        .plan_petq(&q(0.3));
        assert!(warm.prediction.physical_reads <= cold.prediction.physical_reads);
        assert!(warm.prediction.cost() <= cold.prediction.cost());
    }

    #[test]
    fn dstq_leaf_fraction_is_monotone_in_the_threshold() {
        let pdr = PdrCostStats {
            entries: 50_000,
            depth: 3,
            leaves_est: 1_600,
            nodes_est: 1_830,
        };
        let planner = Planner::from_stats(IndexStats {
            tuples: 50_000,
            heap_pages: 1_830,
            inverted: None,
            pdr: Some(pdr),
            residency: 0.0,
        });
        let mk = |t| DstQuery::new(Uda::certain(CatId(0)), t, Default::default());
        let tight = planner.plan_dstq(&mk(0.1));
        let loose = planner.plan_dstq(&mk(5.0));
        assert_eq!(tight.backend, PlannedBackend::PdrTree);
        assert!(tight.prediction.physical_reads <= loose.prediction.physical_reads);
    }
}
