//! Probabilistic join operators (paper §2, Definition 6 and variants).
//!
//! Given relations `R`, `S` with UDAs, `R ⋈_{a=b,τ} S` pairs every
//! `(r, s)` with `Pr(r.a = s.b) ≥ τ` (PETJ). PEJ-top-k returns the `k`
//! most probable pairs; DSTJ pairs tuples within a divergence radius.
//!
//! Three physical plans are provided: *block nested loop* (scan the inner
//! relation once, comparing every outer tuple — the no-index baseline),
//! *index nested loop* (probe an [`UncertainIndex`] on `S` once per outer
//! tuple), and the *parallel* plan ([`parallel::parallel_join`]), which
//! partitions the outer relation across a worker pool and — for
//! PEJ-top-k — shares a rising score floor between workers that seeds
//! every probe's dynamic threshold, so warm probes stop as early as
//! Lemma 1 allows at θ = floor. As the paper notes, joining introduces correlations between
//! result tuples; only threshold-based selection is modeled — lineage
//! tracking is out of scope.

mod nested_loop;
pub mod parallel;

pub use nested_loop::{
    block_dstj, block_dstj_metered, block_nested_loop_petj, block_nested_loop_petj_metered,
    block_top_k_pej, block_top_k_pej_metered, index_nested_loop_petj,
    index_nested_loop_petj_metered,
};
pub use parallel::{parallel_join, parallel_join_with_floor, JoinOutcome, SharedFloor};

use uncat_core::query::{DstQuery, Match, TopKQuery};
use uncat_core::topk::TopKHeap;
use uncat_core::{Divergence, Uda};
use uncat_storage::{BufferPool, Phase, QueryMetrics, Result};

use crate::index_trait::UncertainIndex;
use crate::scan::ScanBaseline;

/// One joined pair: outer tuple id, inner tuple id, and the score
/// (equality probability or divergence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinPair {
    /// Outer (R) tuple id.
    pub left: u64,
    /// Inner (S) tuple id.
    pub right: u64,
    /// `Pr(r = s)` for equality joins, `F(r, s)` for similarity joins.
    pub score: f64,
}

/// Which join to run — the paper's three forms, with their parameters.
///
/// One spec drives every physical plan (block, index, parallel), so the
/// differential tests and the CLI can swap plans without re-stating the
/// predicate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinSpec {
    /// PETJ (Definition 6): all pairs with `Pr(r = s) ≥ τ`.
    Petj {
        /// Probability threshold.
        tau: f64,
    },
    /// PEJ-top-k: the `k` globally most probable pairs.
    PejTopK {
        /// Number of pairs to return.
        k: usize,
    },
    /// DSTJ: all pairs within divergence `τ_d`.
    Dstj {
        /// Divergence radius.
        tau_d: f64,
        /// Divergence measure.
        divergence: Divergence,
    },
}

impl JoinSpec {
    /// Short name for reports and explain output.
    pub fn name(&self) -> &'static str {
        match self {
            JoinSpec::Petj { .. } => "petj",
            JoinSpec::PejTopK { .. } => "pej-topk",
            JoinSpec::Dstj { .. } => "dstj",
        }
    }
}

/// Canonical equality-join pair ordering: score descending, then
/// `(left, right)` ascending. Total even for NaN scores (`f64::total_cmp`
/// — a corrupt page must degrade one join, never panic the process); a
/// positive NaN sorts before every finite score.
pub fn sort_pairs_desc(pairs: &mut [JoinPair]) {
    pairs.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.left.cmp(&b.left))
            .then_with(|| a.right.cmp(&b.right))
    });
}

/// Canonical similarity-join pair ordering: score (divergence) ascending,
/// then `(left, right)` ascending — the one definition every DSTJ plan
/// sorts by. NaN-total like [`sort_pairs_desc`]; a positive NaN sorts
/// after every finite divergence.
pub fn sort_pairs_asc(pairs: &mut [JoinPair]) {
    pairs.sort_by(|a, b| {
        a.score
            .total_cmp(&b.score)
            .then_with(|| a.left.cmp(&b.left))
            .then_with(|| a.right.cmp(&b.right))
    });
}

/// PEJ-top-k: the `k` most probable pairs, by probing the inner index
/// once per outer tuple under a rising score floor.
pub fn index_top_k_pej(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    k: usize,
) -> Result<Vec<JoinPair>> {
    index_top_k_pej_metered(outer, inner, pool, k, &mut QueryMetrics::new())
}

/// [`index_top_k_pej`] with execution counters accumulated over every
/// inner probe.
///
/// The floor is the current k-th best pair score. It is maintained from
/// the moment `k` pairs exist (not only once k is exceeded) and is
/// propagated into the probes themselves as the starting value of the
/// probe's dynamic threshold ([`UncertainIndex::top_k_floored_metered`]):
/// a warm probe terminates (Lemma 1 / best-first stop at θ = floor) as
/// soon as no inner tuple can still displace a held pair — never later
/// than a cold top-k probe would. Pairs below the floor can never enter
/// the result (the floor only rises), so pruning them is exact.
pub fn index_top_k_pej_metered(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    k: usize,
    metrics: &mut QueryMetrics,
) -> Result<Vec<JoinPair>> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let mut best: Vec<JoinPair> = Vec::new();
    let mut floor = 0.0f64;
    for (ltid, luda) in outer {
        let probe = pool.trace_begin(Phase::JoinProbe);
        let probes =
            inner.top_k_floored_metered(pool, &TopKQuery::new(luda.clone(), k), floor, metrics)?;
        pool.trace_end(probe);
        for m in probes {
            // The floored probe never returns sub-floor scores, but keep
            // the guard: it documents the invariant and protects against
            // a backend with laxer floor semantics.
            if best.len() >= k && m.score < floor {
                continue;
            }
            best.push(JoinPair {
                left: *ltid,
                right: m.tid,
                score: m.score,
            });
        }
        if best.len() >= k {
            sort_pairs_desc(&mut best);
            best.truncate(k);
            floor = best.last().map_or(0.0, |p| p.score);
        }
    }
    sort_pairs_desc(&mut best);
    best.truncate(k);
    Ok(best)
}

/// DSTJ: all pairs within divergence `τ_d`, via index probes.
pub fn index_dstj(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    tau_d: f64,
    divergence: uncat_core::Divergence,
) -> Result<Vec<JoinPair>> {
    index_dstj_metered(
        outer,
        inner,
        pool,
        tau_d,
        divergence,
        &mut QueryMetrics::new(),
    )
}

/// [`index_dstj`] with execution counters accumulated over every inner
/// probe.
pub fn index_dstj_metered(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    tau_d: f64,
    divergence: uncat_core::Divergence,
    metrics: &mut QueryMetrics,
) -> Result<Vec<JoinPair>> {
    let mut out = Vec::new();
    for (ltid, luda) in outer {
        let probe = pool.trace_begin(Phase::JoinProbe);
        let matches = inner.dstq_metered(
            pool,
            &DstQuery::new(luda.clone(), tau_d, divergence),
            metrics,
        )?;
        pool.trace_end(probe);
        for m in matches {
            out.push(JoinPair {
                left: *ltid,
                right: m.tid,
                score: m.score,
            });
        }
    }
    sort_pairs_asc(&mut out);
    Ok(out)
}

/// Run `spec` as an index nested loop (one probe per outer tuple),
/// accumulating counters over every probe.
pub fn index_join_metered(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    spec: JoinSpec,
    metrics: &mut QueryMetrics,
) -> Result<Vec<JoinPair>> {
    match spec {
        JoinSpec::Petj { tau } => index_nested_loop_petj_metered(outer, inner, pool, tau, metrics),
        JoinSpec::PejTopK { k } => index_top_k_pej_metered(outer, inner, pool, k, metrics),
        JoinSpec::Dstj { tau_d, divergence } => {
            index_dstj_metered(outer, inner, pool, tau_d, divergence, metrics)
        }
    }
}

/// Run `spec` as a block nested loop (one scan of the inner relation),
/// accumulating counters over the scan.
pub fn block_join_metered(
    outer: &[(u64, Uda)],
    inner: &ScanBaseline,
    pool: &mut BufferPool,
    spec: JoinSpec,
    metrics: &mut QueryMetrics,
) -> Result<Vec<JoinPair>> {
    match spec {
        JoinSpec::Petj { tau } => block_nested_loop_petj_metered(outer, inner, pool, tau, metrics),
        JoinSpec::PejTopK { k } => block_top_k_pej_metered(outer, inner, pool, k, metrics),
        JoinSpec::Dstj { tau_d, divergence } => {
            block_dstj_metered(outer, inner, pool, tau_d, divergence, metrics)
        }
    }
}

/// [`index_join_metered`] packaged as a [`JoinOutcome`]: pairs plus the
/// join's counters, with `metrics.io` set to the pool I/O this join
/// caused (an interval measurement, so a warm reused pool is fine).
pub fn index_join(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    spec: JoinSpec,
) -> Result<JoinOutcome> {
    let before = pool.stats();
    let mut metrics = QueryMetrics::new();
    let pairs = index_join_metered(outer, inner, pool, spec, &mut metrics)?;
    metrics.io = pool.stats().since(&before);
    Ok(JoinOutcome { pairs, metrics })
}

/// [`block_join_metered`] packaged as a [`JoinOutcome`] (see
/// [`index_join`] for the I/O attribution).
pub fn block_join(
    outer: &[(u64, Uda)],
    inner: &ScanBaseline,
    pool: &mut BufferPool,
    spec: JoinSpec,
) -> Result<JoinOutcome> {
    let before = pool.stats();
    let mut metrics = QueryMetrics::new();
    let pairs = block_join_metered(outer, inner, pool, spec, &mut metrics)?;
    metrics.io = pool.stats().since(&before);
    Ok(JoinOutcome { pairs, metrics })
}

/// Per-outer-tuple top-k (the "k best partners for each r" variant, handy
/// for entity-matching examples).
pub fn index_top_k_per_outer(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    k: usize,
) -> Result<Vec<(u64, Vec<Match>)>> {
    index_top_k_per_outer_metered(outer, inner, pool, k, &mut QueryMetrics::new())
}

/// [`index_top_k_per_outer`] with execution counters accumulated over
/// every inner probe.
pub fn index_top_k_per_outer_metered(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    k: usize,
    metrics: &mut QueryMetrics,
) -> Result<Vec<(u64, Vec<Match>)>> {
    let mut out = Vec::with_capacity(outer.len());
    for (ltid, luda) in outer {
        let mut h = TopKHeap::new(k, 0.0);
        let probe = pool.trace_begin(Phase::JoinProbe);
        let matches = inner.top_k_metered(pool, &TopKQuery::new(luda.clone(), k), metrics)?;
        pool.trace_end(probe);
        for m in matches {
            h.offer(m.tid, m.score);
        }
        out.push((*ltid, h.into_sorted()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(left: u64, right: u64, score: f64) -> JoinPair {
        JoinPair { left, right, score }
    }

    #[test]
    fn sort_desc_is_total_with_nan_scores() {
        // A corrupt page can surface as a NaN score; ordering must stay
        // total (no panic) and deterministic.
        let mut pairs = vec![
            pair(1, 1, 0.4),
            pair(2, 2, f64::NAN),
            pair(3, 3, 0.9),
            pair(4, 4, 0.4),
        ];
        sort_pairs_desc(&mut pairs);
        // Positive NaN is totally-ordered above +inf, so it sorts first;
        // the finite scores follow in descending order with (left, right)
        // tie-breaks.
        assert!(pairs[0].score.is_nan());
        assert_eq!(
            pairs[1..].iter().map(|p| p.left).collect::<Vec<_>>(),
            vec![3, 1, 4]
        );
    }

    #[test]
    fn sort_asc_is_total_with_nan_scores() {
        let mut pairs = vec![pair(1, 1, f64::NAN), pair(2, 2, 0.1), pair(3, 3, 0.7)];
        sort_pairs_asc(&mut pairs);
        assert_eq!(pairs[0].left, 2);
        assert_eq!(pairs[1].left, 3);
        assert!(pairs[2].score.is_nan());
    }

    #[test]
    fn sort_orders_ties_by_tids() {
        let mut pairs = vec![pair(2, 9, 0.5), pair(1, 7, 0.5), pair(1, 3, 0.5)];
        sort_pairs_desc(&mut pairs);
        assert_eq!(
            pairs.iter().map(|p| (p.left, p.right)).collect::<Vec<_>>(),
            vec![(1, 3), (1, 7), (2, 9)]
        );
    }
}
