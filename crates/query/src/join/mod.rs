//! Probabilistic join operators (paper §2, Definition 6 and variants).
//!
//! Given relations `R`, `S` with UDAs, `R ⋈_{a=b,τ} S` pairs every
//! `(r, s)` with `Pr(r.a = s.b) ≥ τ` (PETJ). PEJ-top-k returns the `k`
//! most probable pairs; DSTJ pairs tuples within a divergence radius.
//!
//! Two physical plans are provided: *index nested loop* (probe an
//! [`UncertainIndex`] on `S` once per outer tuple) and *block nested loop*
//! (scan-only baseline). As the paper notes, joining introduces
//! correlations between result tuples; only threshold-based selection is
//! modeled — lineage tracking is out of scope.

mod nested_loop;

pub use nested_loop::{
    block_nested_loop_petj, block_nested_loop_petj_metered, index_nested_loop_petj,
    index_nested_loop_petj_metered,
};

use uncat_core::query::{DstQuery, Match, TopKQuery};
use uncat_core::topk::TopKHeap;
use uncat_core::Uda;
use uncat_storage::{BufferPool, QueryMetrics, Result};

use crate::index_trait::UncertainIndex;

/// One joined pair: outer tuple id, inner tuple id, and the score
/// (equality probability or divergence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinPair {
    /// Outer (R) tuple id.
    pub left: u64,
    /// Inner (S) tuple id.
    pub right: u64,
    /// `Pr(r = s)` for equality joins, `F(r, s)` for similarity joins.
    pub score: f64,
}

/// Canonical pair ordering: score descending, then (left, right).
pub fn sort_pairs_desc(pairs: &mut [JoinPair]) {
    pairs.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.left.cmp(&b.left))
            .then_with(|| a.right.cmp(&b.right))
    });
}

/// PEJ-top-k: the `k` most probable pairs, by probing the inner index with
/// a per-outer top-k whose floor rises as the global heap fills.
pub fn index_top_k_pej(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    k: usize,
) -> Result<Vec<JoinPair>> {
    index_top_k_pej_metered(outer, inner, pool, k, &mut QueryMetrics::new())
}

/// [`index_top_k_pej`] with execution counters accumulated over every
/// inner probe.
pub fn index_top_k_pej_metered(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    k: usize,
    metrics: &mut QueryMetrics,
) -> Result<Vec<JoinPair>> {
    // A pair-level heap keyed by a synthetic id; tie-breaking therefore
    // follows outer order, matching the canonical sort below.
    let mut best: Vec<JoinPair> = Vec::new();
    let mut floor = 0.0f64;
    for (ltid, luda) in outer {
        let probes = inner.top_k_metered(pool, &TopKQuery::new(luda.clone(), k), metrics)?;
        for m in probes {
            if best.len() >= k && m.score < floor {
                continue;
            }
            best.push(JoinPair {
                left: *ltid,
                right: m.tid,
                score: m.score,
            });
        }
        if best.len() > k {
            sort_pairs_desc(&mut best);
            best.truncate(k);
            floor = best.last().map_or(0.0, |p| p.score);
        }
    }
    sort_pairs_desc(&mut best);
    best.truncate(k);
    Ok(best)
}

/// DSTJ: all pairs within divergence `τ_d`, via index probes.
pub fn index_dstj(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    tau_d: f64,
    divergence: uncat_core::Divergence,
) -> Result<Vec<JoinPair>> {
    index_dstj_metered(
        outer,
        inner,
        pool,
        tau_d,
        divergence,
        &mut QueryMetrics::new(),
    )
}

/// [`index_dstj`] with execution counters accumulated over every inner
/// probe.
pub fn index_dstj_metered(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    tau_d: f64,
    divergence: uncat_core::Divergence,
    metrics: &mut QueryMetrics,
) -> Result<Vec<JoinPair>> {
    let mut out = Vec::new();
    for (ltid, luda) in outer {
        for m in inner.dstq_metered(
            pool,
            &DstQuery::new(luda.clone(), tau_d, divergence),
            metrics,
        )? {
            out.push(JoinPair {
                left: *ltid,
                right: m.tid,
                score: m.score,
            });
        }
    }
    // Similarity joins order ascending by divergence.
    out.sort_by(|a, b| {
        a.score
            .partial_cmp(&b.score)
            .expect("scores are finite")
            .then_with(|| a.left.cmp(&b.left))
            .then_with(|| a.right.cmp(&b.right))
    });
    Ok(out)
}

/// Per-outer-tuple top-k (the "k best partners for each r" variant, handy
/// for entity-matching examples).
pub fn index_top_k_per_outer(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    k: usize,
) -> Result<Vec<(u64, Vec<Match>)>> {
    index_top_k_per_outer_metered(outer, inner, pool, k, &mut QueryMetrics::new())
}

/// [`index_top_k_per_outer`] with execution counters accumulated over
/// every inner probe.
pub fn index_top_k_per_outer_metered(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    k: usize,
    metrics: &mut QueryMetrics,
) -> Result<Vec<(u64, Vec<Match>)>> {
    let mut out = Vec::with_capacity(outer.len());
    for (ltid, luda) in outer {
        let mut h = TopKHeap::new(k, 0.0);
        for m in inner.top_k_metered(pool, &TopKQuery::new(luda.clone(), k), metrics)? {
            h.offer(m.tid, m.score);
        }
        out.push((*ltid, h.into_sorted()));
    }
    Ok(out)
}
