//! Parallel, pruning-aware join execution.
//!
//! The outer relation is partitioned across a fixed worker pool: workers
//! pull outer tuples from a shared cursor, probe the inner index with a
//! pool provisioned by [`BatchPools`] (a private per-worker pool, or a
//! handle onto one shared lock-striped pool for the whole join), and the
//! partial results are merged into canonical pair order at the end — so
//! the returned pairs are identical to the sequential plan's no matter
//! how the scheduler interleaved the partitions.
//!
//! For PEJ-top-k the workers additionally share a **monotonically rising
//! global floor**: the best k-th pair score any worker has proven so far,
//! published as an `AtomicU64`-encoded `f64` (probabilities are
//! non-negative, so the IEEE-754 bit patterns order exactly like the
//! values and `fetch_max` on the bits is `max` on the scores). Every
//! probe reads the floor first and seeds its dynamic threshold with it
//! (`top_k_floored_metered`), so a warm probe terminates — Lemma 1 /
//! best-first stop at θ = floor — no later than a cold top-k search
//! would. A pair below the floor can never reach the global
//! top k (the floor only rises and never exceeds the true k-th best
//! score), so the pruning is exact: results stay deterministic while the
//! probe work after warm-up drops with every floor raise.
//!
//! I/O attribution is exact per worker: private pools count only their
//! worker's traffic, and shared-pool handles meter per handle (PR 3's
//! `PoolHandle` contract), so the summed [`QueryMetrics`] equals the
//! join's true cost in either mode.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use uncat_core::query::{DstQuery, EqQuery, TopKQuery};
use uncat_core::Uda;
use uncat_storage::{BufferPool, QueryMetrics, Result, SharedStore, StorageError};

use crate::index_trait::UncertainIndex;
use crate::parallel::{lock_recover, BatchPools};

use super::{sort_pairs_asc, sort_pairs_desc, JoinPair, JoinSpec};

/// Result of one join execution: the pairs, in canonical order, plus the
/// execution counters summed over every worker (sequential plans fill
/// the same struct, so plans are directly comparable).
#[derive(Debug)]
pub struct JoinOutcome {
    /// Joined pairs in canonical order (score descending for equality
    /// joins, divergence ascending for similarity joins).
    pub pairs: Vec<JoinPair>,
    /// Counters summed over every inner probe; `metrics.io` is the pool
    /// I/O attributed to this join.
    pub metrics: QueryMetrics,
}

impl JoinOutcome {
    /// The paper's y-axis: physical page reads charged to this join.
    pub fn reads(&self) -> u64 {
        self.metrics.io.physical_reads
    }
}

/// A monotonically rising PEJ-top-k score floor shared across concurrent
/// probes. Scores are probabilities (non-negative), so `fetch_max` over
/// the raw bits is `fetch_max` over the values.
///
/// One floor normally serves one join (see [`parallel_join`]), but any
/// caller that splits a top-k computation across executions whose result
/// sets it will merge — the sharded scatter-gather service shares one
/// floor across every shard probe — can pass its own instance to
/// [`parallel_join_with_floor`] or seed probes directly with
/// [`SharedFloor::get`]. Exactness only requires that every published
/// score is a lower bound on the final k-th best of the *merged* result.
pub struct SharedFloor(AtomicU64);

impl SharedFloor {
    /// A floor of zero: prunes nothing until first raised.
    pub fn new() -> SharedFloor {
        SharedFloor(AtomicU64::new(0.0f64.to_bits()))
    }

    /// The current floor.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Raise the floor to `score` if it is higher than the current floor.
    /// Never lowers it, and ignores non-finite scores (a NaN from a
    /// corrupt page must not poison every other worker's pruning).
    pub fn raise(&self, score: f64) {
        if score > 0.0 && score.is_finite() {
            self.0.fetch_max(score.to_bits(), Ordering::AcqRel);
        }
    }
}

impl Default for SharedFloor {
    fn default() -> SharedFloor {
        SharedFloor::new()
    }
}

/// Record a worker failure, keeping the lowest-indexed one so the error
/// a join reports is deterministic regardless of scheduling.
fn record_error(error: &Mutex<Option<(usize, StorageError)>>, i: usize, e: StorageError) {
    let mut slot = lock_recover(error);
    let replace = match &*slot {
        Some((j, _)) => i < *j,
        None => true,
    };
    if replace {
        *slot = Some((i, e));
    }
}

/// One worker's private state, merged after the scope joins.
struct WorkerPart {
    pairs: Vec<JoinPair>,
    metrics: QueryMetrics,
}

/// Run `spec` as a parallel index nested loop over `threads` workers.
///
/// Results are exactly the sequential [`super::index_join`]'s: the same
/// pair set in the same canonical order (for PEJ-top-k, pruning with a
/// lower bound of the true k-th score never discards a winning pair, and
/// the final merge re-ranks under the one total order). On an error the
/// whole join fails — a join is one query, so PR 1's isolation boundary
/// is the join, not the probe — and the error reported is the one from
/// the lowest-indexed failing outer tuple, so failures are deterministic
/// too.
pub fn parallel_join<I: UncertainIndex + Sync>(
    outer: &[(u64, Uda)],
    inner: &I,
    store: &SharedStore,
    pools: &BatchPools,
    spec: JoinSpec,
    threads: usize,
) -> Result<JoinOutcome> {
    parallel_join_with_floor(
        outer,
        inner,
        store,
        pools,
        spec,
        threads,
        &SharedFloor::new(),
    )
}

/// [`parallel_join`] against an external, possibly pre-raised
/// [`SharedFloor`]. The sharded scatter-gather executor passes one floor
/// to every shard's join so a floor proven on a warm shard prunes the
/// probes of every other shard; the floor is read and raised only by
/// PEJ-top-k probes (the threshold forms carry their own bound in the
/// spec). Sharing a floor across joins is exact as long as the caller
/// merges (and re-truncates) the joins' pair sets, because each published
/// score then lower-bounds the merged k-th best.
pub fn parallel_join_with_floor<I: UncertainIndex + Sync>(
    outer: &[(u64, Uda)],
    inner: &I,
    store: &SharedStore,
    pools: &BatchPools,
    spec: JoinSpec,
    threads: usize,
    floor: &SharedFloor,
) -> Result<JoinOutcome> {
    assert!(threads >= 1, "need at least one worker");
    if let JoinSpec::PejTopK { k: 0 } = spec {
        return Ok(JoinOutcome {
            pairs: Vec::new(),
            metrics: QueryMetrics::new(),
        });
    }

    let next = AtomicUsize::new(0);
    let error: Mutex<Option<(usize, StorageError)>> = Mutex::new(None);
    let parts: Mutex<Vec<WorkerPart>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..threads.min(outer.len().max(1)) {
            scope.spawn(|| {
                // A panic anywhere in the probe path (an index bug, a
                // poisoned lock observed mid-update) fails this *join*
                // with a typed error; it must never unwind through the
                // scope and take the process down with it.
                let worker = AssertUnwindSafe(|| {
                    let mut pool = pools.pool(store);
                    let mut metrics = QueryMetrics::new();
                    let mut local: Vec<JoinPair> = Vec::new();
                    loop {
                        if lock_recover(&error).is_some() {
                            break; // another worker already failed the join
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= outer.len() {
                            break;
                        }
                        let (ltid, luda) = &outer[i];
                        if let Err(e) = probe_one(
                            spec,
                            inner,
                            &mut pool,
                            *ltid,
                            luda,
                            floor,
                            &mut local,
                            &mut metrics,
                        ) {
                            record_error(&error, i, e);
                            break;
                        }
                    }
                    // Exact per-worker I/O: a private pool counts only this
                    // worker; a shared-pool handle meters per handle.
                    metrics.io = pool.stats();
                    lock_recover(&parts).push(WorkerPart {
                        pairs: local,
                        metrics,
                    });
                });
                if catch_unwind(worker).is_err() {
                    // usize::MAX orders the panic after every real error:
                    // a deterministic storage failure, when present, wins.
                    record_error(&error, usize::MAX, StorageError::Poisoned);
                }
            });
        }
    });

    if let Some((_, e)) = error.into_inner().unwrap_or_else(PoisonError::into_inner) {
        return Err(e);
    }
    let mut pairs = Vec::new();
    let mut metrics = QueryMetrics::new();
    // No recorded error, so no worker panicked while holding this lock;
    // a poisoned lock here is unreachable, but degrade to a typed error
    // rather than panicking if it ever happens.
    let collected = parts.into_inner().map_err(|_| StorageError::Poisoned)?;
    for part in collected {
        pairs.extend(part.pairs);
        metrics.merge(&part.metrics);
    }
    // Deterministic merge: worker completion order never reaches the
    // output, only the canonical total order does.
    match spec {
        JoinSpec::Petj { .. } => sort_pairs_desc(&mut pairs),
        JoinSpec::PejTopK { k } => {
            sort_pairs_desc(&mut pairs);
            pairs.truncate(k);
        }
        JoinSpec::Dstj { .. } => sort_pairs_asc(&mut pairs),
    }
    Ok(JoinOutcome { pairs, metrics })
}

/// Probe the inner index for one outer tuple and fold the matches into
/// the worker's partial result.
#[allow(clippy::too_many_arguments)]
fn probe_one<I: UncertainIndex>(
    spec: JoinSpec,
    inner: &I,
    pool: &mut BufferPool,
    ltid: u64,
    luda: &Uda,
    floor: &SharedFloor,
    local: &mut Vec<JoinPair>,
    metrics: &mut QueryMetrics,
) -> Result<()> {
    match spec {
        JoinSpec::Petj { tau } => {
            for m in inner.petq_metered(pool, &EqQuery::new(luda.clone(), tau), metrics)? {
                local.push(JoinPair {
                    left: ltid,
                    right: m.tid,
                    score: m.score,
                });
            }
        }
        JoinSpec::Dstj { tau_d, divergence } => {
            for m in inner.dstq_metered(
                pool,
                &DstQuery::new(luda.clone(), tau_d, divergence),
                metrics,
            )? {
                local.push(JoinPair {
                    left: ltid,
                    right: m.tid,
                    score: m.score,
                });
            }
        }
        JoinSpec::PejTopK { k } => {
            // Live threshold propagation: the floor published by any
            // worker seeds this probe's dynamic threshold, so a warm
            // probe stops (Lemma 1 / best-first stop at θ = floor) as
            // soon as no inner tuple can still displace a held pair —
            // never later than a cold top-k probe would.
            let probes = inner.top_k_floored_metered(
                pool,
                &TopKQuery::new(luda.clone(), k),
                floor.get(),
                metrics,
            )?;
            for m in probes {
                // Re-read the floor: it may have risen since the probe
                // started, and a sub-floor pair can never win.
                if local.len() >= k && m.score < floor.get() {
                    continue;
                }
                local.push(JoinPair {
                    left: ltid,
                    right: m.tid,
                    score: m.score,
                });
            }
            if local.len() >= k {
                sort_pairs_desc(local);
                local.truncate(k);
                // This worker's k-th best is a lower bound on the global
                // k-th best (its pairs are a subset of the global set),
                // so publishing it can only tighten every probe.
                if let Some(last) = local.last() {
                    floor.raise(last.score);
                }
            }
        }
    }
    Ok(())
}
