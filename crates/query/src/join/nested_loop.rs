//! PETJ physical plans.

use uncat_core::equality::{eq_prob, meets_threshold};
use uncat_core::query::EqQuery;
use uncat_core::Uda;
use uncat_storage::{BufferPool, Result};

use crate::index_trait::UncertainIndex;
use crate::scan::ScanBaseline;

use super::{sort_pairs_desc, JoinPair};

/// Index nested loop PETJ: probe the inner index once per outer tuple.
pub fn index_nested_loop_petj(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    tau: f64,
) -> Result<Vec<JoinPair>> {
    let mut out = Vec::new();
    for (ltid, luda) in outer {
        for m in inner.petq(pool, &EqQuery::new(luda.clone(), tau))? {
            out.push(JoinPair {
                left: *ltid,
                right: m.tid,
                score: m.score,
            });
        }
    }
    sort_pairs_desc(&mut out);
    Ok(out)
}

/// Block nested loop PETJ baseline: for each outer tuple, scan the inner
/// relation. (The outer side is in memory — the paper joins an uncertain
/// relation against a stored one; the inner side is charged I/O.)
pub fn block_nested_loop_petj(
    outer: &[(u64, Uda)],
    inner: &ScanBaseline,
    pool: &mut BufferPool,
    tau: f64,
) -> Result<Vec<JoinPair>> {
    let mut out = Vec::new();
    inner.scan(pool, |rtid, ruda| {
        for (ltid, luda) in outer {
            let pr = eq_prob(luda, ruda);
            if meets_threshold(pr, tau) {
                out.push(JoinPair {
                    left: *ltid,
                    right: rtid,
                    score: pr,
                });
            }
        }
    })?;
    sort_pairs_desc(&mut out);
    Ok(out)
}
