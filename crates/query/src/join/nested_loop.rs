//! PETJ physical plans.

use uncat_core::equality::{eq_prob, meets_threshold};
use uncat_core::query::EqQuery;
use uncat_core::{Divergence, Uda};
use uncat_storage::{BufferPool, Phase, QueryMetrics, Result};

use crate::index_trait::UncertainIndex;
use crate::scan::ScanBaseline;

use super::{sort_pairs_asc, sort_pairs_desc, JoinPair};

/// Index nested loop PETJ: probe the inner index once per outer tuple.
pub fn index_nested_loop_petj(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    tau: f64,
) -> Result<Vec<JoinPair>> {
    index_nested_loop_petj_metered(outer, inner, pool, tau, &mut QueryMetrics::new())
}

/// [`index_nested_loop_petj`] with execution counters: `metrics`
/// accumulates over every inner probe, so it reports the whole join's
/// cost (counters are per-join, not per-probe).
pub fn index_nested_loop_petj_metered(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    tau: f64,
    metrics: &mut QueryMetrics,
) -> Result<Vec<JoinPair>> {
    let mut out = Vec::new();
    for (ltid, luda) in outer {
        let probe = pool.trace_begin(Phase::JoinProbe);
        let matches = inner.petq_metered(pool, &EqQuery::new(luda.clone(), tau), metrics)?;
        pool.trace_end(probe);
        for m in matches {
            out.push(JoinPair {
                left: *ltid,
                right: m.tid,
                score: m.score,
            });
        }
    }
    sort_pairs_desc(&mut out);
    Ok(out)
}

/// Block nested loop PETJ baseline: for each outer tuple, scan the inner
/// relation. (The outer side is in memory — the paper joins an uncertain
/// relation against a stored one; the inner side is charged I/O.)
pub fn block_nested_loop_petj(
    outer: &[(u64, Uda)],
    inner: &ScanBaseline,
    pool: &mut BufferPool,
    tau: f64,
) -> Result<Vec<JoinPair>> {
    block_nested_loop_petj_metered(outer, inner, pool, tau, &mut QueryMetrics::new())
}

/// [`block_nested_loop_petj`] with execution counters: one
/// `heap_tuples_scanned` per inner tuple (each is compared against every
/// outer tuple, but read once).
pub fn block_nested_loop_petj_metered(
    outer: &[(u64, Uda)],
    inner: &ScanBaseline,
    pool: &mut BufferPool,
    tau: f64,
    metrics: &mut QueryMetrics,
) -> Result<Vec<JoinPair>> {
    let mut out = Vec::new();
    let scan = pool.trace_begin(Phase::HeapScan);
    inner.scan(pool, |rtid, ruda| {
        metrics.heap_tuples_scanned += 1;
        for (ltid, luda) in outer {
            let pr = eq_prob(luda, ruda);
            if meets_threshold(pr, tau) {
                out.push(JoinPair {
                    left: *ltid,
                    right: rtid,
                    score: pr,
                });
            }
        }
    })?;
    pool.trace_end(scan);
    sort_pairs_desc(&mut out);
    Ok(out)
}

/// Block nested loop PEJ-top-k baseline: one scan of the inner relation,
/// keeping the `k` best pairs seen so far.
pub fn block_top_k_pej(
    outer: &[(u64, Uda)],
    inner: &ScanBaseline,
    pool: &mut BufferPool,
    k: usize,
) -> Result<Vec<JoinPair>> {
    block_top_k_pej_metered(outer, inner, pool, k, &mut QueryMetrics::new())
}

/// [`block_top_k_pej`] with execution counters: one `heap_tuples_scanned`
/// per inner tuple. Zero-probability pairs never qualify and are dropped
/// on sight, matching the index plans.
pub fn block_top_k_pej_metered(
    outer: &[(u64, Uda)],
    inner: &ScanBaseline,
    pool: &mut BufferPool,
    k: usize,
    metrics: &mut QueryMetrics,
) -> Result<Vec<JoinPair>> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let mut best: Vec<JoinPair> = Vec::new();
    // Compact whenever the buffer outgrows a small multiple of k, so the
    // scan stays O(k) in memory instead of materializing every pair.
    let compact_at = 4 * k.max(16);
    let scan = pool.trace_begin(Phase::HeapScan);
    inner.scan(pool, |rtid, ruda| {
        metrics.heap_tuples_scanned += 1;
        for (ltid, luda) in outer {
            let pr = eq_prob(luda, ruda);
            if pr > 0.0 {
                best.push(JoinPair {
                    left: *ltid,
                    right: rtid,
                    score: pr,
                });
            }
        }
        if best.len() > compact_at {
            sort_pairs_desc(&mut best);
            best.truncate(k);
        }
    })?;
    pool.trace_end(scan);
    sort_pairs_desc(&mut best);
    best.truncate(k);
    Ok(best)
}

/// Block nested loop DSTJ baseline: one scan of the inner relation,
/// keeping every pair within divergence `tau_d`.
pub fn block_dstj(
    outer: &[(u64, Uda)],
    inner: &ScanBaseline,
    pool: &mut BufferPool,
    tau_d: f64,
    divergence: Divergence,
) -> Result<Vec<JoinPair>> {
    block_dstj_metered(
        outer,
        inner,
        pool,
        tau_d,
        divergence,
        &mut QueryMetrics::new(),
    )
}

/// [`block_dstj`] with execution counters: one `heap_tuples_scanned` per
/// inner tuple.
pub fn block_dstj_metered(
    outer: &[(u64, Uda)],
    inner: &ScanBaseline,
    pool: &mut BufferPool,
    tau_d: f64,
    divergence: Divergence,
    metrics: &mut QueryMetrics,
) -> Result<Vec<JoinPair>> {
    let mut out = Vec::new();
    let scan = pool.trace_begin(Phase::HeapScan);
    inner.scan(pool, |rtid, ruda| {
        metrics.heap_tuples_scanned += 1;
        for (ltid, luda) in outer {
            let d = divergence.eval(luda.entries(), ruda.entries());
            if d <= tau_d {
                out.push(JoinPair {
                    left: *ltid,
                    right: rtid,
                    score: d,
                });
            }
        }
    })?;
    pool.trace_end(scan);
    sort_pairs_asc(&mut out);
    Ok(out)
}
