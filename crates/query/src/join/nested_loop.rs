//! PETJ physical plans.

use uncat_core::equality::{eq_prob, meets_threshold};
use uncat_core::query::EqQuery;
use uncat_core::Uda;
use uncat_storage::{BufferPool, QueryMetrics, Result};

use crate::index_trait::UncertainIndex;
use crate::scan::ScanBaseline;

use super::{sort_pairs_desc, JoinPair};

/// Index nested loop PETJ: probe the inner index once per outer tuple.
pub fn index_nested_loop_petj(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    tau: f64,
) -> Result<Vec<JoinPair>> {
    index_nested_loop_petj_metered(outer, inner, pool, tau, &mut QueryMetrics::new())
}

/// [`index_nested_loop_petj`] with execution counters: `metrics`
/// accumulates over every inner probe, so it reports the whole join's
/// cost (counters are per-join, not per-probe).
pub fn index_nested_loop_petj_metered(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
    tau: f64,
    metrics: &mut QueryMetrics,
) -> Result<Vec<JoinPair>> {
    let mut out = Vec::new();
    for (ltid, luda) in outer {
        for m in inner.petq_metered(pool, &EqQuery::new(luda.clone(), tau), metrics)? {
            out.push(JoinPair {
                left: *ltid,
                right: m.tid,
                score: m.score,
            });
        }
    }
    sort_pairs_desc(&mut out);
    Ok(out)
}

/// Block nested loop PETJ baseline: for each outer tuple, scan the inner
/// relation. (The outer side is in memory — the paper joins an uncertain
/// relation against a stored one; the inner side is charged I/O.)
pub fn block_nested_loop_petj(
    outer: &[(u64, Uda)],
    inner: &ScanBaseline,
    pool: &mut BufferPool,
    tau: f64,
) -> Result<Vec<JoinPair>> {
    block_nested_loop_petj_metered(outer, inner, pool, tau, &mut QueryMetrics::new())
}

/// [`block_nested_loop_petj`] with execution counters: one
/// `heap_tuples_scanned` per inner tuple (each is compared against every
/// outer tuple, but read once).
pub fn block_nested_loop_petj_metered(
    outer: &[(u64, Uda)],
    inner: &ScanBaseline,
    pool: &mut BufferPool,
    tau: f64,
    metrics: &mut QueryMetrics,
) -> Result<Vec<JoinPair>> {
    let mut out = Vec::new();
    inner.scan(pool, |rtid, ruda| {
        metrics.heap_tuples_scanned += 1;
        for (ltid, luda) in outer {
            let pr = eq_prob(luda, ruda);
            if meets_threshold(pr, tau) {
                out.push(JoinPair {
                    left: *ltid,
                    right: rtid,
                    score: pr,
                });
            }
        }
    })?;
    sort_pairs_desc(&mut out);
    Ok(out)
}
