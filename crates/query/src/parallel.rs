//! Parallel batch execution.
//!
//! The paper's model gives every query its own buffer pool, which makes
//! query batches embarrassingly parallel: the page store is shared and
//! internally synchronized, the indexes are immutable during reads, and
//! each worker owns its pools. This module fans a batch out over a fixed
//! number of threads and returns outcomes in input order.
//!
//! Failure isolation extends to batches: each query's outcome is its own
//! `Result`, so one bad page fails one slot of the batch while every other
//! query still completes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use uncat_core::query::{DstQuery, EqQuery, TopKQuery};
use uncat_storage::trace::{Clock, Phase, QueryTrace, Tracer};
use uncat_storage::{
    BufferPool, QueryMetrics, Result, SharedBufferPool, SharedStore, StorageError,
};

use crate::executor::QueryOutcome;
use crate::index_trait::UncertainIndex;

/// How a batch provisions buffer frames: the paper's model (a private
/// pool per query) or one [`SharedBufferPool`] serving every query in
/// the batch, so repeated index pages are fetched once per *batch*
/// instead of once per *query*.
pub enum BatchPools {
    /// A fresh private pool of `frames` frames per query (the default,
    /// and the paper's experimental setup).
    Private {
        /// Frames allocated to each query's private pool.
        frames: usize,
    },
    /// One shared lock-striped pool for the whole batch; per-query I/O
    /// attribution still comes out exact via per-handle stats.
    Shared(Arc<SharedBufferPool>),
}

impl BatchPools {
    /// The paper's model: a private `frames`-frame pool per query.
    pub fn private(frames: usize) -> BatchPools {
        BatchPools::Private { frames }
    }

    /// A shared pool of `total_frames` frames striped over `shards`
    /// shards on `store`.
    pub fn shared(store: &SharedStore, total_frames: usize, shards: usize) -> BatchPools {
        BatchPools::Shared(SharedBufferPool::new(store.clone(), total_frames, shards))
    }

    /// The shared pool behind this provisioning, if any — for reading
    /// pool-level hit-rate counters after the batch.
    pub fn shared_pool(&self) -> Option<&Arc<SharedBufferPool>> {
        match self {
            BatchPools::Private { .. } => None,
            BatchPools::Shared(pool) => Some(pool),
        }
    }

    /// Materialize the pool one query (or one join worker) runs against.
    pub(crate) fn pool(&self, store: &SharedStore) -> BufferPool {
        match self {
            BatchPools::Private { frames } => BufferPool::with_capacity(store.clone(), *frames),
            BatchPools::Shared(pool) => BufferPool::from_handle(pool.handle()),
        }
    }
}

/// Lock a worker-shared mutex, recovering the data from a poisoned lock.
/// Every guarded update in this crate's batch machinery is a single
/// assignment or push that cannot be observed half-done, so the data is
/// still well-formed; the panic that poisoned the lock surfaces as a
/// typed [`StorageError::Poisoned`] on the affected queries instead of
/// cascading panics across workers.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Extra attempts a batch slot gets when the shared pool momentarily has
/// every frame pinned by concurrent handles ([`StorageError::PoolExhausted`]).
/// Contention like that is transient — handles unpin as their reads
/// complete — so a bounded retry turns a scheduling accident into a
/// slightly slower answer. Persistent exhaustion (a pool genuinely too
/// small for one query's working set) still fails after the last attempt.
const POOL_EXHAUSTED_RETRIES: usize = 2;

/// Run `f` once per query on `threads` workers; results come back in
/// input order, one `Result` per query. Each query runs against a pool
/// from `pools` (private per query, or a handle onto the batch's shared
/// pool) and populates a private [`QueryMetrics`] (never shared across
/// threads), so per-query counters are exact regardless of scheduling.
///
/// A query that fails with [`StorageError::PoolExhausted`] is retried up
/// to [`POOL_EXHAUSTED_RETRIES`] times, each attempt against a **fresh
/// pool and fresh metrics**: the abandoned attempt's counters — including
/// any `plan_fallbacks` its adaptive executor ticked before dying — never
/// leak into the outcome, so [`batch_metrics`] stays per-attempt-exact
/// (it describes exactly the executions whose results were returned).
fn run_batch<Q, I, F>(
    index: &I,
    store: &SharedStore,
    pools: &BatchPools,
    queries: &[Q],
    threads: usize,
    clock: Option<&Arc<dyn Clock>>,
    f: F,
) -> Vec<Result<QueryOutcome>>
where
    Q: Sync,
    I: UncertainIndex + Sync,
    F: Fn(&I, &mut BufferPool, &Q, &mut QueryMetrics) -> Result<Vec<uncat_core::query::Match>>
        + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    let mut out: Vec<Option<Result<QueryOutcome>>> = Vec::with_capacity(queries.len());
    out.resize_with(queries.len(), || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let out_cells: Vec<Mutex<&mut Option<Result<QueryOutcome>>>> =
        out.iter_mut().map(Mutex::new).collect();

    let run_one = |q: &Q| -> Result<QueryOutcome> {
        let mut attempt = 0;
        loop {
            let mut pool = pools.pool(store);
            if let Some(clock) = clock {
                // Workers share one clock but each query records into
                // its own tracer — per-query traces are exact, and
                // their histograms merge exactly (additivity, like
                // the counters).
                pool.set_tracer(Tracer::enabled(clock.clone()));
            }
            let root = pool.trace_begin(Phase::Query);
            let mut metrics = QueryMetrics::new();
            let outcome = f(index, &mut pool, q, &mut metrics).map(|matches| {
                pool.trace_end(root);
                metrics.io = pool.stats();
                QueryOutcome {
                    matches,
                    io: pool.stats(),
                    metrics,
                    trace: pool.take_trace(),
                }
            });
            match outcome {
                Err(StorageError::PoolExhausted) if attempt < POOL_EXHAUSTED_RETRIES => {
                    attempt += 1;
                }
                done => return done,
            }
        }
    };

    std::thread::scope(|scope| {
        for _ in 0..threads.min(queries.len().max(1)) {
            scope.spawn(|| {
                // A panicking query must fail its own batch slot, not the
                // process: catch the unwind, leave the cell for the
                // post-scope sweep to fill with a typed error, and let
                // the worker die quietly (its remaining slots are picked
                // up by the other workers via the shared cursor).
                let worker = AssertUnwindSafe(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let outcome = run_one(&queries[i]);
                    **lock_recover(&out_cells[i]) = Some(outcome);
                });
                let _ = catch_unwind(worker);
            });
        }
    });
    drop(out_cells);
    out.into_iter()
        .map(|o| o.unwrap_or(Err(StorageError::Poisoned)))
        .collect()
}

/// Sum the counters of every *successful* outcome in a batch. Because
/// counters are additive and each worker meters its queries privately,
/// this equals the metrics of running the same queries sequentially —
/// `tests` below pin that invariant.
pub fn batch_metrics(results: &[Result<QueryOutcome>]) -> QueryMetrics {
    QueryMetrics::sum(
        results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|o| &o.metrics),
    )
}

/// Merge the traces of every successful outcome in a batch: histograms
/// add field-wise and span trees are concatenated, so the result is the
/// exact batch-level latency profile regardless of how queries were
/// scheduled across workers (the timing analogue of [`batch_metrics`]).
pub fn batch_trace(results: &[Result<QueryOutcome>]) -> QueryTrace {
    let mut merged = QueryTrace::default();
    for trace in results
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .filter_map(|o| o.trace.as_ref())
    {
        merged.merge(trace);
    }
    merged
}

/// Evaluate a batch of PETQs in parallel with private per-query pools.
pub fn petq_batch<I: UncertainIndex + Sync>(
    index: &I,
    store: &SharedStore,
    frames: usize,
    queries: &[EqQuery],
    threads: usize,
) -> Vec<Result<QueryOutcome>> {
    petq_batch_with(index, store, &BatchPools::private(frames), queries, threads)
}

/// Evaluate a batch of PETQs in parallel against `pools`.
pub fn petq_batch_with<I: UncertainIndex + Sync>(
    index: &I,
    store: &SharedStore,
    pools: &BatchPools,
    queries: &[EqQuery],
    threads: usize,
) -> Vec<Result<QueryOutcome>> {
    run_batch(index, store, pools, queries, threads, None, |i, p, q, m| {
        i.petq_metered(p, q, m)
    })
}

/// [`petq_batch_with`] with latency tracing: every outcome carries a
/// [`QueryTrace`] recorded against the shared `clock`; fold them with
/// [`batch_trace`].
pub fn petq_batch_traced<I: UncertainIndex + Sync>(
    index: &I,
    store: &SharedStore,
    pools: &BatchPools,
    queries: &[EqQuery],
    threads: usize,
    clock: &Arc<dyn Clock>,
) -> Vec<Result<QueryOutcome>> {
    run_batch(
        index,
        store,
        pools,
        queries,
        threads,
        Some(clock),
        |i, p, q, m| i.petq_metered(p, q, m),
    )
}

/// Evaluate a batch of top-k queries in parallel with private per-query
/// pools.
pub fn top_k_batch<I: UncertainIndex + Sync>(
    index: &I,
    store: &SharedStore,
    frames: usize,
    queries: &[TopKQuery],
    threads: usize,
) -> Vec<Result<QueryOutcome>> {
    top_k_batch_with(index, store, &BatchPools::private(frames), queries, threads)
}

/// Evaluate a batch of top-k queries in parallel against `pools`.
pub fn top_k_batch_with<I: UncertainIndex + Sync>(
    index: &I,
    store: &SharedStore,
    pools: &BatchPools,
    queries: &[TopKQuery],
    threads: usize,
) -> Vec<Result<QueryOutcome>> {
    run_batch(index, store, pools, queries, threads, None, |i, p, q, m| {
        i.top_k_metered(p, q, m)
    })
}

/// [`top_k_batch_with`] with latency tracing (see [`petq_batch_traced`]).
pub fn top_k_batch_traced<I: UncertainIndex + Sync>(
    index: &I,
    store: &SharedStore,
    pools: &BatchPools,
    queries: &[TopKQuery],
    threads: usize,
    clock: &Arc<dyn Clock>,
) -> Vec<Result<QueryOutcome>> {
    run_batch(
        index,
        store,
        pools,
        queries,
        threads,
        Some(clock),
        |i, p, q, m| i.top_k_metered(p, q, m),
    )
}

/// Evaluate a batch of DSTQs in parallel with private per-query pools.
pub fn dstq_batch<I: UncertainIndex + Sync>(
    index: &I,
    store: &SharedStore,
    frames: usize,
    queries: &[DstQuery],
    threads: usize,
) -> Vec<Result<QueryOutcome>> {
    dstq_batch_with(index, store, &BatchPools::private(frames), queries, threads)
}

/// Evaluate a batch of DSTQs in parallel against `pools`.
pub fn dstq_batch_with<I: UncertainIndex + Sync>(
    index: &I,
    store: &SharedStore,
    pools: &BatchPools,
    queries: &[DstQuery],
    threads: usize,
) -> Vec<Result<QueryOutcome>> {
    run_batch(index, store, pools, queries, threads, None, |i, p, q, m| {
        i.dstq_metered(p, q, m)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncat_core::{CatId, Domain, Uda};
    use uncat_inverted::InvertedIndex;
    use uncat_storage::InMemoryDisk;

    fn uda(pairs: &[(u32, f32)]) -> Uda {
        Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let store = InMemoryDisk::shared();
        let data: Vec<(u64, Uda)> = (0..2000u64)
            .map(|i| {
                let c = (i % 11) as u32;
                (i, uda(&[(c, 0.6), ((c + 3) % 11, 0.4)]))
            })
            .collect();
        let mut pool = BufferPool::with_capacity(store.clone(), 128);
        let idx = crate::InvertedBackend::new(
            InvertedIndex::build(
                Domain::anonymous(11),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            )
            .unwrap(),
        );
        pool.flush().unwrap();
        drop(pool);

        let queries: Vec<EqQuery> = (0..16)
            .map(|i| EqQuery::new(uda(&[((i % 11) as u32, 1.0)]), 0.3))
            .collect();

        let par = petq_batch(&idx, &store, 100, &queries, 4);
        for (q, outcome) in queries.iter().zip(&par) {
            let outcome = outcome.as_ref().expect("in-memory query");
            let mut p = BufferPool::with_capacity(store.clone(), 100);
            let seq = idx.petq(&mut p, q).unwrap();
            assert_eq!(
                outcome.matches.iter().map(|m| m.tid).collect::<Vec<_>>(),
                seq.iter().map(|m| m.tid).collect::<Vec<_>>(),
            );
            assert_eq!(
                outcome.reads(),
                p.stats().physical_reads,
                "identical cold I/O"
            );
        }
    }

    #[test]
    fn topk_and_dstq_batches_match_sequential_on_pdr() {
        use uncat_core::query::{DstQuery, TopKQuery};
        use uncat_core::Divergence;
        use uncat_pdrtree::{PdrConfig, PdrTree};

        let store = InMemoryDisk::shared();
        let data: Vec<(u64, Uda)> = (0..800u64)
            .map(|i| {
                let c = (i % 9) as u32;
                (i, uda(&[(c, 0.7), ((c + 4) % 9, 0.3)]))
            })
            .collect();
        let mut pool = BufferPool::with_capacity(store.clone(), 128);
        let tree = PdrTree::build(
            Domain::anonymous(9),
            PdrConfig::default(),
            &mut pool,
            data.iter().map(|(t, u)| (*t, u)),
        )
        .unwrap();
        pool.flush().unwrap();
        drop(pool);

        let tks: Vec<TopKQuery> = (0..8)
            .map(|i| TopKQuery::new(data[i * 7].1.clone(), 6))
            .collect();
        for (q, out) in tks.iter().zip(top_k_batch(&tree, &store, 100, &tks, 3)) {
            let out = out.expect("in-memory query");
            let mut p = BufferPool::with_capacity(store.clone(), 100);
            let seq = tree.top_k(&mut p, q).unwrap();
            assert_eq!(
                out.matches.iter().map(|m| m.tid).collect::<Vec<_>>(),
                seq.iter().map(|m| m.tid).collect::<Vec<_>>()
            );
        }

        let dqs: Vec<DstQuery> = (0..8)
            .map(|i| DstQuery::new(data[i * 11].1.clone(), 0.25, Divergence::L1))
            .collect();
        for (q, out) in dqs.iter().zip(dstq_batch(&tree, &store, 100, &dqs, 3)) {
            let out = out.expect("in-memory query");
            let mut p = BufferPool::with_capacity(store.clone(), 100);
            let seq = UncertainIndex::dstq(&tree, &mut p, q).unwrap();
            assert_eq!(
                out.matches.iter().map(|m| m.tid).collect::<Vec<_>>(),
                seq.iter().map(|m| m.tid).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn shared_pool_batch_matches_private_and_saves_reads() {
        let store = InMemoryDisk::shared();
        let data: Vec<(u64, Uda)> = (0..3000u64)
            .map(|i| {
                let c = (i % 13) as u32;
                (i, uda(&[(c, 0.6), ((c + 5) % 13, 0.4)]))
            })
            .collect();
        let mut pool = BufferPool::with_capacity(store.clone(), 128);
        let idx = crate::InvertedBackend::new(
            InvertedIndex::build(
                Domain::anonymous(13),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            )
            .unwrap(),
        );
        pool.flush().unwrap();
        drop(pool);

        // A repeated-query mix: every query re-reads the same hot lists.
        let queries: Vec<EqQuery> = (0..24)
            .map(|i| EqQuery::new(uda(&[((i % 3) as u32, 1.0)]), 0.3))
            .collect();

        let private = petq_batch(&idx, &store, 100, &queries, 4);
        let pools = BatchPools::shared(&store, 400, 8);
        let shared = petq_batch_with(&idx, &store, &pools, &queries, 4);

        let mut private_reads = 0;
        let mut shared_reads = 0;
        for (p, s) in private.iter().zip(&shared) {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(
                p.matches.iter().map(|m| m.tid).collect::<Vec<_>>(),
                s.matches.iter().map(|m| m.tid).collect::<Vec<_>>(),
                "pool flavor must not change results"
            );
            assert_eq!(
                p.metrics.io.logical_reads, s.metrics.io.logical_reads,
                "same access pattern either way"
            );
            private_reads += p.metrics.io.physical_reads;
            shared_reads += s.metrics.io.physical_reads;
        }
        assert!(
            shared_reads < private_reads,
            "shared pool must save physical reads on repeated queries \
             ({shared_reads} vs {private_reads})"
        );
        // Per-handle attribution sums to the pool's aggregate.
        let agg = pools.shared_pool().unwrap().stats();
        assert_eq!(agg.physical_reads, shared_reads);
    }

    #[test]
    fn pool_exhausted_retry_is_per_attempt_exact() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let store = InMemoryDisk::shared();
        let data: Vec<(u64, Uda)> = (0..50u64)
            .map(|i| (i, uda(&[((i % 3) as u32, 1.0)])))
            .collect();
        let mut pool = BufferPool::with_capacity(store.clone(), 64);
        let idx = crate::InvertedBackend::new(
            InvertedIndex::build(
                Domain::anonymous(3),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            )
            .unwrap(),
        );
        pool.flush().unwrap();
        drop(pool);

        // Queries are slot indexes; each slot's first attempt ticks a
        // counter and then dies with PoolExhausted, and every attempt
        // ticks `plan_fallbacks`. Per-attempt exactness means the tick
        // from the abandoned attempt never reaches the outcome.
        let queries: Vec<usize> = (0..6).collect();
        let attempts: Vec<AtomicUsize> = queries.iter().map(|_| AtomicUsize::new(0)).collect();
        let pools = BatchPools::private(50);
        let out = run_batch(&idx, &store, &pools, &queries, 3, None, |i, p, q, m| {
            m.plan_fallbacks += 1;
            if attempts[*q].fetch_add(1, Ordering::Relaxed) == 0 && *q != 0 {
                return Err(StorageError::PoolExhausted);
            }
            i.petq_metered(p, &EqQuery::new(uda(&[(0, 1.0)]), 0.5), m)
        });
        for (q, o) in queries.iter().zip(&out) {
            let o = o.as_ref().expect("retry must succeed");
            assert_eq!(
                o.metrics.plan_fallbacks, 1,
                "slot {q}: the failed attempt's counters leaked into the outcome"
            );
            let expected = if *q == 0 { 1 } else { 2 };
            assert_eq!(attempts[*q].load(Ordering::Relaxed), expected);
        }
        assert_eq!(
            batch_metrics(&out).plan_fallbacks,
            queries.len() as u64,
            "batch sum counts exactly the returned executions"
        );
    }

    #[test]
    fn pool_exhausted_gives_up_after_bounded_retries() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let store = InMemoryDisk::shared();
        let data: Vec<(u64, Uda)> = (0..20u64).map(|i| (i, uda(&[(0, 1.0)]))).collect();
        let mut pool = BufferPool::with_capacity(store.clone(), 64);
        let idx = crate::InvertedBackend::new(
            InvertedIndex::build(
                Domain::anonymous(1),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            )
            .unwrap(),
        );
        pool.flush().unwrap();
        drop(pool);

        let attempts = AtomicUsize::new(0);
        let queries = [0usize];
        let pools = BatchPools::private(50);
        let out = run_batch(&idx, &store, &pools, &queries, 1, None, |_, _, _, _| {
            attempts.fetch_add(1, Ordering::Relaxed);
            Err(StorageError::PoolExhausted)
        });
        assert!(matches!(out[0], Err(StorageError::PoolExhausted)));
        assert_eq!(
            attempts.load(Ordering::Relaxed),
            POOL_EXHAUSTED_RETRIES + 1,
            "one initial attempt plus the bounded retries"
        );
    }

    #[test]
    fn panicking_query_fails_its_slot_only() {
        let store = InMemoryDisk::shared();
        let data: Vec<(u64, Uda)> = (0..50u64)
            .map(|i| (i, uda(&[((i % 3) as u32, 1.0)])))
            .collect();
        let mut pool = BufferPool::with_capacity(store.clone(), 64);
        let idx = crate::InvertedBackend::new(
            InvertedIndex::build(
                Domain::anonymous(3),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            )
            .unwrap(),
        );
        pool.flush().unwrap();
        drop(pool);

        let queries: Vec<usize> = (0..8).collect();
        let pools = BatchPools::private(50);
        let out = run_batch(&idx, &store, &pools, &queries, 3, None, |i, p, q, m| {
            assert_ne!(*q, 2, "injected query bug");
            i.petq_metered(p, &EqQuery::new(uda(&[(0, 1.0)]), 0.5), m)
        });
        for (q, o) in queries.iter().zip(&out) {
            if *q == 2 {
                assert!(
                    matches!(o, Err(StorageError::Poisoned)),
                    "the panicking slot surfaces as a typed error"
                );
            } else {
                assert!(o.is_ok(), "slot {q} must survive a neighbor's panic");
            }
        }
    }

    #[test]
    fn panicking_probe_fails_the_join_not_the_process() {
        use crate::join::{parallel_join, JoinSpec};
        use uncat_core::query::{DsTopKQuery, Match};

        /// An index whose every probe panics — a stand-in for an index
        /// bug surfacing mid-join.
        struct Panicky;
        impl UncertainIndex for Panicky {
            fn petq_metered(
                &self,
                _: &mut BufferPool,
                _: &EqQuery,
                _: &mut QueryMetrics,
            ) -> Result<Vec<Match>> {
                panic!("injected probe bug");
            }
            fn top_k_metered(
                &self,
                _: &mut BufferPool,
                _: &TopKQuery,
                _: &mut QueryMetrics,
            ) -> Result<Vec<Match>> {
                panic!("injected probe bug");
            }
            fn dstq_metered(
                &self,
                _: &mut BufferPool,
                _: &DstQuery,
                _: &mut QueryMetrics,
            ) -> Result<Vec<Match>> {
                panic!("injected probe bug");
            }
            fn ds_top_k_metered(
                &self,
                _: &mut BufferPool,
                _: &DsTopKQuery,
                _: &mut QueryMetrics,
            ) -> Result<Vec<Match>> {
                panic!("injected probe bug");
            }
            fn tuple_count(&self) -> u64 {
                1
            }
            fn backend_name(&self) -> &'static str {
                "panicky"
            }
        }

        let store = InMemoryDisk::shared();
        let outer: Vec<(u64, Uda)> = (0..4u64).map(|i| (i, uda(&[(0, 1.0)]))).collect();
        let pools = BatchPools::private(50);
        let out = parallel_join(
            &outer,
            &Panicky,
            &store,
            &pools,
            JoinSpec::Petj { tau: 0.5 },
            2,
        );
        assert!(
            matches!(out, Err(StorageError::Poisoned)),
            "a probe panic must fail the join with a typed error"
        );
    }

    #[test]
    fn single_thread_and_oversubscription_work() {
        let store = InMemoryDisk::shared();
        let data: Vec<(u64, Uda)> = (0..100u64)
            .map(|i| (i, uda(&[((i % 3) as u32, 1.0)])))
            .collect();
        let mut pool = BufferPool::with_capacity(store.clone(), 64);
        let idx = crate::InvertedBackend::new(
            InvertedIndex::build(
                Domain::anonymous(3),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            )
            .unwrap(),
        );
        pool.flush().unwrap();
        drop(pool);
        let queries = vec![EqQuery::new(uda(&[(0, 1.0)]), 0.5); 3];
        for threads in [1usize, 8] {
            let out = petq_batch(&idx, &store, 50, &queries, threads);
            assert_eq!(out.len(), 3);
            for o in &out {
                assert_eq!(o.as_ref().expect("in-memory query").matches.len(), 34);
            }
        }
    }
}
