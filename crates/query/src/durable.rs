//! Online mutable indexes: write-ahead logging, checkpoints, recovery.
//!
//! Both paper indexes support in-place mutation (`insert`/`update`/
//! `delete`), but a mutation that dies halfway through its page writes
//! would leave the on-disk structure unreadable. [`DurableIndex`] makes
//! mutation crash-safe with three cooperating mechanisms (DESIGN.md §6f):
//!
//! 1. **Write-ahead log.** Every mutation is appended to a
//!    [`Wal`] (CRC-framed, group-committed) *before*
//!    any page is touched. A logged-and-synced mutation survives a crash;
//!    an unsynced one is cleanly truncated away on reopen.
//! 2. **No-steal buffering.** The index's pages are mutated only inside a
//!    no-steal [`BufferPool`]: dirty pages are *never* written back
//!    outside a checkpoint, so the durable page image always equals the
//!    last checkpoint exactly, and WAL replay starts from a known state.
//!    (Logical replay over half-applied pages would double-apply.)
//! 3. **Checkpoint redo journal.** A checkpoint must install many pages
//!    plus a metadata snapshot atomically. It first writes all of them to
//!    a side journal (same CRC framing), syncs it, and only then installs.
//!    Recovery redoes a complete journal and ignores an incomplete one —
//!    either way the store is consistent.
//!
//! Epochs tie the three together: every checkpoint advances an epoch
//! counter stored in the snapshot, and the WAL's first record names the
//! epoch it extends. Recovery replays the WAL only when the epochs match;
//! a stale log (its effects already folded into a newer checkpoint) is
//! discarded, and a log from the *future* is reported as corruption
//! rather than replayed onto the wrong base.
//!
//! Failure handling is fail-stop: once a mutation has been logged, any
//! error applying it (or any error inside a checkpoint) **poisons** the
//! index — every further operation returns
//! [`StorageError::Poisoned`] until the index is reopened, which re-runs
//! recovery and restores log/state agreement.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::sync::Mutex;

use uncat_core::query::{DsTopKQuery, DstQuery, EqQuery, Match, TopKQuery};
use uncat_core::{codec, Uda};
use uncat_inverted::InvertedIndex;
use uncat_pdrtree::PdrTree;
use uncat_storage::page::PageBuf;
use uncat_storage::snapshot as snapfile;
use uncat_storage::trace::{Clock, Phase, QueryTrace, Tracer};
use uncat_storage::{
    BufferPool, FileDisk, FileLog, InMemoryDisk, MemLog, PageId, QueryMetrics, Result, SharedLog,
    SharedStore, SnapshotFileError, StorageError, TailStatus, Wal, WalConfig, WalStats, PAGE_SIZE,
};

use crate::index_trait::{InvertedBackend, UncertainIndex};

// --- Snapshot slot ---

/// Where the crash-atomic metadata snapshot lives.
///
/// `commit` must be atomic under crashes: after a crash, `load` returns
/// either the previous snapshot or the new one, never a torn mix. The
/// file implementation gets this from the temp-file/fsync/rename protocol
/// of [`uncat_storage::snapshot::commit`]; the in-memory implementation
/// is trivially atomic.
pub trait SnapshotSlot: Send + Sync {
    /// Atomically replace the stored snapshot with `blob`.
    fn commit(&self, blob: &[u8]) -> Result<()>;
    /// The stored snapshot, or `None` if none was ever committed.
    fn load(&self) -> Result<Option<Vec<u8>>>;
}

/// In-memory snapshot slot for tests and simulations.
#[derive(Default)]
pub struct MemSlot {
    blob: Mutex<Option<Vec<u8>>>,
}

impl MemSlot {
    /// A fresh, empty slot.
    pub fn new() -> MemSlot {
        MemSlot::default()
    }
}

impl SnapshotSlot for MemSlot {
    fn commit(&self, blob: &[u8]) -> Result<()> {
        let mut g = self.blob.lock().unwrap_or_else(|p| p.into_inner());
        *g = Some(blob.to_vec());
        Ok(())
    }

    fn load(&self) -> Result<Option<Vec<u8>>> {
        let g = self.blob.lock().unwrap_or_else(|p| p.into_inner());
        Ok(g.clone())
    }
}

/// File-backed snapshot slot using the crash-atomic snapshot file
/// protocol (temp file, fsync, rename, directory fsync).
pub struct FileSlot {
    path: PathBuf,
}

impl FileSlot {
    /// A slot at `path`. The file need not exist yet.
    pub fn new(path: impl Into<PathBuf>) -> FileSlot {
        FileSlot { path: path.into() }
    }
}

impl SnapshotSlot for FileSlot {
    fn commit(&self, blob: &[u8]) -> Result<()> {
        snapfile::commit(&self.path, blob).map_err(snapshot_file_error)
    }

    fn load(&self) -> Result<Option<Vec<u8>>> {
        if !self.path.exists() {
            return Ok(None);
        }
        snapfile::load(&self.path)
            .map(Some)
            .map_err(snapshot_file_error)
    }
}

/// Translate a snapshot-file failure into the storage error vocabulary.
fn snapshot_file_error(e: SnapshotFileError) -> StorageError {
    match e {
        SnapshotFileError::Io { op, source } => StorageError::Io {
            op,
            pid: None,
            detail: source.to_string(),
        },
        SnapshotFileError::BadMagic => StorageError::Corrupt("snapshot file: bad magic"),
        SnapshotFileError::BadVersion(_) => {
            StorageError::Corrupt("snapshot file: unsupported format version")
        }
        SnapshotFileError::Truncated => StorageError::Corrupt("snapshot file: truncated"),
        SnapshotFileError::Checksum => StorageError::Corrupt("snapshot file: checksum mismatch"),
        SnapshotFileError::Decode(_) => StorageError::Corrupt("snapshot payload does not decode"),
    }
}

// --- Log record codec ---

const REC_BEGIN_EPOCH: u8 = 0;
const REC_INSERT: u8 = 1;
const REC_UPDATE: u8 = 2;
const REC_DELETE: u8 = 3;

/// One logical WAL record. UDAs ride in the shared
/// [`uncat_core::codec`] encoding, so a replayed distribution is
/// bit-identical to the one originally indexed.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// First record of every log: names the checkpoint epoch the
    /// following mutations extend.
    BeginEpoch(u64),
    /// Insert a new tuple (pre-validated: `tid` was absent at log time).
    Insert {
        /// Tuple id.
        tid: u64,
        /// Its distribution.
        uda: Uda,
    },
    /// Upsert a tuple's distribution.
    Update {
        /// Tuple id.
        tid: u64,
        /// The replacement distribution.
        uda: Uda,
    },
    /// Delete a tuple (pre-validated: `tid` was present at log time).
    Delete {
        /// Tuple id.
        tid: u64,
    },
}

impl LogRecord {
    /// Serialize to a WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            LogRecord::BeginEpoch(e) => {
                let mut v = vec![REC_BEGIN_EPOCH];
                v.extend_from_slice(&e.to_le_bytes());
                v
            }
            LogRecord::Insert { tid, uda } | LogRecord::Update { tid, uda } => {
                let tag = if matches!(self, LogRecord::Insert { .. }) {
                    REC_INSERT
                } else {
                    REC_UPDATE
                };
                let mut v = vec![tag];
                v.extend_from_slice(&tid.to_le_bytes());
                codec::encode(uda, &mut v);
                v
            }
            LogRecord::Delete { tid } => {
                let mut v = vec![REC_DELETE];
                v.extend_from_slice(&tid.to_le_bytes());
                v
            }
        }
    }

    /// Decode a WAL payload. The framing layer has already checked the
    /// CRC, so a decode failure here means a logic error or version skew,
    /// not a torn write — it is reported as corruption, never replayed.
    pub fn decode(bytes: &[u8]) -> Result<LogRecord> {
        let (&tag, rest) = bytes
            .split_first()
            .ok_or(StorageError::Corrupt("empty log record"))?;
        let u64_at = |b: &[u8]| -> Result<u64> {
            Ok(u64::from_le_bytes(
                b.get(..8)
                    .and_then(|s| s.try_into().ok())
                    .ok_or(StorageError::Corrupt("log record too short"))?,
            ))
        };
        match tag {
            REC_BEGIN_EPOCH => {
                if rest.len() != 8 {
                    return Err(StorageError::Corrupt("begin-epoch record length"));
                }
                Ok(LogRecord::BeginEpoch(u64_at(rest)?))
            }
            REC_INSERT | REC_UPDATE => {
                let tid = u64_at(rest)?;
                let (uda, used) = codec::decode(&rest[8..])
                    .map_err(|_| StorageError::Corrupt("log record uda does not decode"))?;
                if used != rest.len() - 8 {
                    return Err(StorageError::Corrupt("trailing bytes in log record"));
                }
                Ok(if tag == REC_INSERT {
                    LogRecord::Insert { tid, uda }
                } else {
                    LogRecord::Update { tid, uda }
                })
            }
            REC_DELETE => {
                if rest.len() != 8 {
                    return Err(StorageError::Corrupt("delete record length"));
                }
                Ok(LogRecord::Delete { tid: u64_at(rest)? })
            }
            _ => Err(StorageError::Corrupt("unknown log record tag")),
        }
    }
}

// --- Checkpoint journal codec ---

const J_HEADER: u8 = 0x10;
const J_PAGE: u8 = 0x11;
const J_SNAPSHOT: u8 = 0x12;
const J_COMMIT: u8 = 0x13;

fn j_header(base_epoch: u64, new_epoch: u64, page_count: u32) -> Vec<u8> {
    let mut v = vec![J_HEADER];
    v.extend_from_slice(&base_epoch.to_le_bytes());
    v.extend_from_slice(&new_epoch.to_le_bytes());
    v.extend_from_slice(&page_count.to_le_bytes());
    v
}

fn j_page(pid: PageId, buf: &[u8; PAGE_SIZE]) -> Vec<u8> {
    let mut v = vec![J_PAGE];
    v.extend_from_slice(&pid.0.to_le_bytes());
    v.extend_from_slice(buf);
    v
}

fn j_snapshot(blob: &[u8]) -> Vec<u8> {
    let mut v = vec![J_SNAPSHOT];
    v.extend_from_slice(blob);
    v
}

/// A fully parsed, committed checkpoint journal.
struct JournalImage {
    base_epoch: u64,
    new_epoch: u64,
    pages: Vec<(PageId, PageBuf)>,
    snapshot: Vec<u8>,
}

/// Parse journal records into a redo image. Returns `None` for anything
/// short of a complete `header, pages…, snapshot, commit` sequence: an
/// incomplete journal is the normal result of crashing mid-checkpoint
/// (before the install phase started) and is simply discarded.
fn parse_journal(records: &[Vec<u8>]) -> Option<JournalImage> {
    let mut it = records.iter();
    let header = it.next()?;
    if header.len() != 1 + 8 + 8 + 4 || header[0] != J_HEADER {
        return None;
    }
    let base_epoch = u64::from_le_bytes(header[1..9].try_into().ok()?);
    let new_epoch = u64::from_le_bytes(header[9..17].try_into().ok()?);
    let count = u32::from_le_bytes(header[17..21].try_into().ok()?) as usize;
    let mut pages = Vec::with_capacity(count.min(records.len()));
    for _ in 0..count {
        let rec = it.next()?;
        if rec.len() != 1 + 8 + PAGE_SIZE || rec[0] != J_PAGE {
            return None;
        }
        let pid = PageId(u64::from_le_bytes(rec[1..9].try_into().ok()?));
        let mut buf = uncat_storage::page::zeroed_page();
        buf.copy_from_slice(&rec[9..]);
        pages.push((pid, buf));
    }
    let snap = it.next()?;
    if snap.first() != Some(&J_SNAPSHOT) {
        return None;
    }
    let commit = it.next()?;
    if commit.as_slice() != [J_COMMIT] || it.next().is_some() {
        return None;
    }
    Some(JournalImage {
        base_epoch,
        new_epoch,
        pages,
        snapshot: snap[1..].to_vec(),
    })
}

// --- Epoch wrapper around backend snapshots ---

const WRAP_MAGIC: &[u8; 4] = b"UDX1";

fn wrap_blob(epoch: u64, inner: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(12 + inner.len());
    v.extend_from_slice(WRAP_MAGIC);
    v.extend_from_slice(&epoch.to_le_bytes());
    v.extend_from_slice(inner);
    v
}

/// Split a committed durable snapshot payload into its checkpoint epoch
/// and the wrapped backend blob (for tooling that reads the snapshot slot
/// directly, e.g. the CLI's read path after recovery).
pub fn split_snapshot(blob: &[u8]) -> Result<(u64, &[u8])> {
    unwrap_blob(blob)
}

fn unwrap_blob(blob: &[u8]) -> Result<(u64, &[u8])> {
    if blob.len() < 12 || &blob[..4] != WRAP_MAGIC {
        return Err(StorageError::Corrupt("snapshot wrapper: bad magic"));
    }
    let epoch = u64::from_le_bytes(
        blob[4..12]
            .try_into()
            .map_err(|_| StorageError::Corrupt("snapshot wrapper: bad epoch"))?,
    );
    Ok((epoch, &blob[12..]))
}

// --- Mutable backends ---

/// The mutation-side contract a backend must satisfy to run under a
/// [`DurableIndex`]. Apply methods are called *after* the mutation has
/// been logged (and on replay during recovery); they must be
/// deterministic given the same starting state and mutation sequence.
pub trait MutableBackend: UncertainIndex + Sized {
    /// Apply an insert. The durable layer has already rejected duplicate
    /// tuple ids before logging.
    fn apply_insert(&mut self, pool: &mut BufferPool, tid: u64, uda: &Uda) -> Result<()>;
    /// Apply an upsert; returns whether a previous distribution existed.
    fn apply_update(&mut self, pool: &mut BufferPool, tid: u64, uda: &Uda) -> Result<bool>;
    /// Apply a delete; returns whether the tuple existed.
    fn apply_delete(&mut self, pool: &mut BufferPool, tid: u64) -> Result<bool>;
    /// Whether `tid` is currently indexed.
    fn contains(&self, pool: &mut BufferPool, tid: u64) -> Result<bool>;
    /// Serialize the backend's metadata (paired with a page store holding
    /// its pages).
    fn snapshot_blob(&self) -> Vec<u8>;
    /// Reattach a backend from [`MutableBackend::snapshot_blob`] output
    /// over the same page store.
    fn open_blob(blob: &[u8]) -> Result<Self>;
    /// Recompute any cached planner statistics from the live structure.
    /// Called by the durable layer at the start of every checkpoint, so
    /// the snapshot written by [`MutableBackend::snapshot_blob`] always
    /// carries statistics that reflect the checkpointed state. The
    /// default is a no-op for backends without a cost model.
    fn refresh_stats(&mut self) {}
}

impl MutableBackend for InvertedBackend {
    fn apply_insert(&mut self, pool: &mut BufferPool, tid: u64, uda: &Uda) -> Result<()> {
        self.index.insert(pool, tid, uda)
    }

    fn apply_update(&mut self, pool: &mut BufferPool, tid: u64, uda: &Uda) -> Result<bool> {
        self.index.update(pool, tid, uda)
    }

    fn apply_delete(&mut self, pool: &mut BufferPool, tid: u64) -> Result<bool> {
        self.index.delete(pool, tid)
    }

    fn contains(&self, _pool: &mut BufferPool, tid: u64) -> Result<bool> {
        Ok(self.index.contains(tid))
    }

    fn snapshot_blob(&self) -> Vec<u8> {
        self.index.snapshot()
    }

    fn open_blob(blob: &[u8]) -> Result<InvertedBackend> {
        InvertedIndex::open(blob)
            .map(InvertedBackend::new)
            .map_err(|e| StorageError::Corrupt(e.0))
    }

    fn refresh_stats(&mut self) {
        self.index.refresh_cost_stats();
    }
}

impl MutableBackend for PdrTree {
    fn apply_insert(&mut self, pool: &mut BufferPool, tid: u64, uda: &Uda) -> Result<()> {
        PdrTree::insert(self, pool, tid, uda)
    }

    fn apply_update(&mut self, pool: &mut BufferPool, tid: u64, uda: &Uda) -> Result<bool> {
        PdrTree::update(self, pool, tid, uda)
    }

    fn apply_delete(&mut self, pool: &mut BufferPool, tid: u64) -> Result<bool> {
        Ok(self.delete_by_tid(pool, tid)?.is_some())
    }

    fn contains(&self, pool: &mut BufferPool, tid: u64) -> Result<bool> {
        Ok(self.find_tuple(pool, tid)?.is_some())
    }

    fn snapshot_blob(&self) -> Vec<u8> {
        self.snapshot()
    }

    fn open_blob(blob: &[u8]) -> Result<PdrTree> {
        PdrTree::open(blob).map_err(|e| StorageError::Corrupt(e.0))
    }
}

// --- Durable storage bundle ---

/// The four durable locations a [`DurableIndex`] spans: the page store,
/// the write-ahead log, the checkpoint redo journal, and the metadata
/// snapshot slot. Clone it to "reboot" in tests: drop the index, keep the
/// bundle, reopen.
#[derive(Clone)]
pub struct DurableStorage {
    /// Page store holding index pages (heap, postings, tree nodes).
    pub store: SharedStore,
    /// Write-ahead log device.
    pub wal: SharedLog,
    /// Checkpoint redo-journal device.
    pub journal: SharedLog,
    /// Crash-atomic metadata snapshot slot.
    pub slot: Arc<dyn SnapshotSlot>,
}

impl DurableStorage {
    /// An all-in-memory bundle for tests and simulations.
    pub fn in_memory() -> DurableStorage {
        DurableStorage {
            store: InMemoryDisk::shared(),
            wal: MemLog::shared(),
            journal: MemLog::shared(),
            slot: Arc::new(MemSlot::new()),
        }
    }

    /// A file-backed bundle rooted at an existing page file plus three
    /// sibling files (created on demand): the WAL, the journal, and the
    /// snapshot. `create` makes a fresh page file; otherwise the existing
    /// one is opened.
    pub fn open_files(
        pages: &Path,
        wal: &Path,
        journal: &Path,
        snapshot: &Path,
        create: bool,
    ) -> Result<DurableStorage> {
        let store: SharedStore = if create {
            Arc::new(FileDisk::create(pages).map_err(|e| StorageError::io("create", None, e))?)
        } else {
            Arc::new(FileDisk::open(pages).map_err(|e| StorageError::io("open", None, e))?)
        };
        Ok(DurableStorage {
            store,
            wal: Arc::new(FileLog::open_or_create(wal)?),
            journal: Arc::new(FileLog::open_or_create(journal)?),
            slot: Arc::new(FileSlot::new(snapshot)),
        })
    }
}

// --- Configuration ---

/// Crash-point injection inside [`DurableIndex::checkpoint`], for
/// recovery testing: the checkpoint fails (with a typed I/O error, and
/// the index poisoned) immediately *after* the named phase completed, so
/// a reopen exercises recovery from exactly that boundary. Fires once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointCrash {
    /// No injection.
    #[default]
    None,
    /// Crash after the redo journal is written and synced, before any
    /// page is installed.
    AfterJournal,
    /// Crash after the dirty pages are installed into the store, before
    /// the snapshot commit.
    AfterInstall,
    /// Crash after the snapshot commit, before the WAL reset.
    AfterSnapshot,
    /// Crash after the WAL reset and begin-epoch append, before the
    /// journal is cleared.
    AfterWalReset,
}

/// Tuning knobs for a [`DurableIndex`].
#[derive(Debug, Clone, Copy)]
pub struct DurableConfig {
    /// WAL group-commit window (records per fsync). `1` = sync every
    /// mutation; larger windows trade a bounded loss window for fewer
    /// fsyncs.
    pub group_commit: usize,
    /// Frames in the index's private no-steal buffer pool.
    pub pool_frames: usize,
    /// Checkpoint automatically after this many mutations (`0` disables
    /// the count trigger; the dirty-page watermark still applies).
    pub checkpoint_every: u64,
    /// Crash-point injection for recovery tests.
    pub crash: CheckpointCrash,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            group_commit: 1,
            pool_frames: 64,
            checkpoint_every: 0,
            crash: CheckpointCrash::None,
        }
    }
}

/// What recovery found and did while opening a [`DurableIndex`].
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The epoch the index resumed at.
    pub epoch: u64,
    /// Mutation records replayed from the WAL tail.
    pub replayed_records: u64,
    /// How the WAL ended (a torn tail was truncated at the first bad
    /// record before replay).
    pub wal_tail: TailStatus,
    /// Whether a complete checkpoint journal was redone.
    pub journal_redone: bool,
    /// Whether a stale WAL (already folded into a newer checkpoint) was
    /// discarded instead of replayed.
    pub stale_wal_discarded: bool,
}

// --- The durable index ---

/// A crash-safe mutable index: a [`MutableBackend`] plus its private
/// no-steal pool, write-ahead log, checkpoint journal, and snapshot slot.
///
/// Mutations are logged before they touch a page; queries run against the
/// live (buffered) state through the index's own pool. Call
/// [`DurableIndex::checkpoint`] (or configure auto-checkpointing) to fold
/// the log into a new durable base and truncate it.
pub struct DurableIndex<B: MutableBackend> {
    backend: B,
    pool: BufferPool,
    wal: Wal,
    storage: DurableStorage,
    config: DurableConfig,
    epoch: u64,
    poisoned: bool,
    mutations_since_checkpoint: u64,
    replayed_records: u64,
}

impl<B: MutableBackend> DurableIndex<B> {
    /// Build a fresh durable index: `init` constructs the backend (for
    /// example via `InvertedIndex::build` or `PdrTree::new`) against the
    /// index's no-steal pool, then an initial checkpoint publishes it.
    /// The index is durable from the moment this returns; a crash before
    /// that leaves nothing recoverable (creation is not atomic, the first
    /// checkpoint's snapshot commit is the publish point).
    pub fn create<F>(storage: DurableStorage, config: DurableConfig, init: F) -> Result<Self>
    where
        F: FnOnce(&mut BufferPool) -> Result<B>,
    {
        let mut pool = BufferPool::new_no_steal(storage.store.clone(), config.pool_frames);
        let backend = init(&mut pool)?;
        let wal = Wal::new(
            storage.wal.clone(),
            WalConfig {
                group_commit: config.group_commit,
            },
        );
        let mut idx = DurableIndex {
            backend,
            pool,
            wal,
            storage,
            config,
            epoch: 0,
            poisoned: false,
            mutations_since_checkpoint: 0,
            replayed_records: 0,
        };
        idx.checkpoint()?;
        Ok(idx)
    }

    /// Reopen a durable index after a shutdown or crash: load the last
    /// committed snapshot, redo a completed checkpoint journal if one was
    /// interrupted mid-install, repair the WAL's tail, and replay its
    /// mutations. Returns the index positioned exactly where the last
    /// acknowledged (synced) mutation left it, plus a report of what
    /// recovery did.
    pub fn open(storage: DurableStorage, config: DurableConfig) -> Result<(Self, RecoveryReport)> {
        // 1. The last committed snapshot names the base epoch.
        let mut blob = storage.slot.load()?.ok_or(StorageError::Corrupt(
            "no committed snapshot to recover from",
        ))?;
        let (mut epoch, _) = unwrap_blob(&blob)?;

        // 2. Redo an interrupted checkpoint. A complete journal whose
        //    base epoch matches the loaded snapshot means the crash hit
        //    between "journal synced" and "snapshot committed": reinstall
        //    its pages (idempotent) and finish the snapshot commit. Any
        //    other journal content is a discarded torso.
        let jscan = Wal::scan(storage.journal.as_ref())?;
        let mut journal_redone = false;
        if let Some(img) = parse_journal(&jscan.records) {
            if img.base_epoch == epoch {
                for (pid, buf) in &img.pages {
                    storage.store.write(*pid, buf)?;
                }
                storage.slot.commit(&img.snapshot)?;
                epoch = img.new_epoch;
                blob = img.snapshot;
                journal_redone = true;
            }
        }
        storage.journal.truncate(0)?;

        let (snap_epoch, inner) = unwrap_blob(&blob)?;
        debug_assert_eq!(snap_epoch, epoch);
        let backend = B::open_blob(inner)?;
        let pool = BufferPool::new_no_steal(storage.store.clone(), config.pool_frames);

        // 3. Repair and replay the WAL.
        let (wal, scan) = Wal::open(
            storage.wal.clone(),
            WalConfig {
                group_commit: config.group_commit,
            },
        )?;
        let wal_tail = scan.tail;
        let mut idx = DurableIndex {
            backend,
            pool,
            wal,
            storage,
            config,
            epoch,
            poisoned: false,
            mutations_since_checkpoint: 0,
            replayed_records: 0,
        };
        let mut replayed = 0u64;
        let mut stale_wal_discarded = false;
        if scan.records.is_empty() {
            // Fresh or fully-torn log: seal the current epoch.
            idx.wal.append(&LogRecord::BeginEpoch(epoch).encode())?;
            idx.wal.flush()?;
        } else {
            let LogRecord::BeginEpoch(log_epoch) = LogRecord::decode(&scan.records[0])? else {
                return Err(StorageError::Corrupt(
                    "write-ahead log does not start with a begin-epoch record",
                ));
            };
            if log_epoch > epoch {
                return Err(StorageError::Corrupt(
                    "write-ahead log is ahead of the snapshot",
                ));
            }
            if log_epoch < epoch {
                // The crash hit after the snapshot commit but before the
                // WAL reset: these mutations are already folded into the
                // snapshot (via the journal's pages). Replaying them
                // would double-apply.
                idx.wal.reset()?;
                idx.wal.append(&LogRecord::BeginEpoch(epoch).encode())?;
                idx.wal.flush()?;
                stale_wal_discarded = true;
            } else {
                for rec in &scan.records[1..] {
                    idx.apply(&LogRecord::decode(rec)?)?;
                    replayed += 1;
                }
                idx.mutations_since_checkpoint = replayed;
                if replayed > 0 {
                    // The snapshot's statistics describe the pre-crash
                    // checkpoint, not the state replay just rebuilt;
                    // without a refresh, `Strategy::Auto` would plan
                    // against stale counts until the next checkpoint.
                    idx.backend.refresh_stats();
                }
            }
        }
        idx.replayed_records = replayed;
        let report = RecoveryReport {
            epoch: idx.epoch,
            replayed_records: replayed,
            wal_tail,
            journal_redone,
            stale_wal_discarded,
        };
        Ok((idx, report))
    }

    fn fail_if_poisoned(&self) -> Result<()> {
        if self.poisoned {
            return Err(StorageError::Poisoned);
        }
        Ok(())
    }

    fn poison(&mut self, e: StorageError) -> StorageError {
        self.poisoned = true;
        e
    }

    /// Apply a logged mutation to the backend (also the replay path).
    fn apply(&mut self, rec: &LogRecord) -> Result<()> {
        match rec {
            LogRecord::BeginEpoch(_) => Err(StorageError::Corrupt(
                "begin-epoch record in the middle of a log",
            )),
            LogRecord::Insert { tid, uda } => self.backend.apply_insert(&mut self.pool, *tid, uda),
            LogRecord::Update { tid, uda } => self
                .backend
                .apply_update(&mut self.pool, *tid, uda)
                .map(|_| ()),
            LogRecord::Delete { tid } => {
                self.backend.apply_delete(&mut self.pool, *tid).map(|_| ())
            }
        }
    }

    /// Log, then apply, then maybe auto-checkpoint. Any failure after the
    /// append starts poisons the index: the log and the in-memory state
    /// can no longer be assumed to agree, and a reopen re-syncs them.
    fn commit_mutation(&mut self, rec: LogRecord, metrics: &mut QueryMetrics) -> Result<()> {
        // An error return leaves the mutation span open; the tracer
        // force-closes it when the trace is taken.
        let span = self.pool.trace_begin(Phase::Mutation);
        let before = self.wal.stats();
        let t0 = self.pool.tracer_mut().now_ns();
        let logged = self.wal.append(&rec.encode());
        let after = self.wal.stats();
        if let Some(t0) = t0 {
            let dur = self
                .pool
                .tracer_mut()
                .now_ns()
                .unwrap_or(t0)
                .saturating_sub(t0);
            // An append that closes a group-commit window performs the
            // fsync inside the same call, so the whole duration is charged
            // to both histograms (see docs/METRICS.md).
            self.pool
                .tracer_mut()
                .record_wal(dur, after.fsyncs > before.fsyncs);
        }
        metrics.wal_appends += after.records_appended - before.records_appended;
        metrics.wal_fsyncs += after.fsyncs - before.fsyncs;
        if let Err(e) = logged {
            // The device may hold a torn record; appending after it would
            // put valid records beyond a bad one, where the scan cannot
            // see them. Only recovery (which truncates the tail) may
            // write to this log again.
            return Err(self.poison(e));
        }
        if let Err(e) = self.apply(&rec) {
            return Err(self.poison(e));
        }
        self.mutations_since_checkpoint += 1;
        let out = self.maybe_auto_checkpoint(metrics);
        self.pool.trace_end(span);
        out
    }

    fn maybe_auto_checkpoint(&mut self, metrics: &mut QueryMetrics) -> Result<()> {
        let by_count = self.config.checkpoint_every > 0
            && self.mutations_since_checkpoint >= self.config.checkpoint_every;
        // The no-steal pool cannot evict dirty frames; checkpoint before
        // it fills up so mutations and queries keep finding free frames.
        let by_dirty = self.pool.dirty_count() >= self.config.pool_frames.saturating_mul(3) / 4;
        if by_count || by_dirty {
            let before = self.wal.stats();
            let out = self.checkpoint();
            let after = self.wal.stats();
            metrics.wal_appends += after.records_appended - before.records_appended;
            metrics.wal_fsyncs += after.fsyncs - before.fsyncs;
            out?;
        }
        Ok(())
    }

    /// Insert a new tuple. Duplicate ids are rejected *before* logging
    /// (nothing is written). Durable once the group-commit window syncs
    /// (immediately at window 1).
    pub fn insert(&mut self, tid: u64, uda: &Uda) -> Result<()> {
        self.insert_metered(tid, uda, &mut QueryMetrics::new())
    }

    /// [`DurableIndex::insert`] with write-path counters
    /// (`wal_appends`/`wal_fsyncs`) added to `metrics`.
    pub fn insert_metered(
        &mut self,
        tid: u64,
        uda: &Uda,
        metrics: &mut QueryMetrics,
    ) -> Result<()> {
        self.fail_if_poisoned()?;
        if self.backend.contains(&mut self.pool, tid)? {
            return Err(StorageError::Duplicate { key: tid });
        }
        self.commit_mutation(
            LogRecord::Insert {
                tid,
                uda: uda.clone(),
            },
            metrics,
        )
    }

    /// Upsert a tuple's distribution. Returns whether a previous
    /// distribution was replaced.
    pub fn update(&mut self, tid: u64, uda: &Uda) -> Result<bool> {
        self.update_metered(tid, uda, &mut QueryMetrics::new())
    }

    /// [`DurableIndex::update`] with write-path counters.
    pub fn update_metered(
        &mut self,
        tid: u64,
        uda: &Uda,
        metrics: &mut QueryMetrics,
    ) -> Result<bool> {
        self.fail_if_poisoned()?;
        let existed = self.backend.contains(&mut self.pool, tid)?;
        self.commit_mutation(
            LogRecord::Update {
                tid,
                uda: uda.clone(),
            },
            metrics,
        )?;
        Ok(existed)
    }

    /// Delete a tuple. Returns whether it existed; deleting an absent
    /// tuple writes nothing to the log.
    pub fn delete(&mut self, tid: u64) -> Result<bool> {
        self.delete_metered(tid, &mut QueryMetrics::new())
    }

    /// [`DurableIndex::delete`] with write-path counters.
    pub fn delete_metered(&mut self, tid: u64, metrics: &mut QueryMetrics) -> Result<bool> {
        self.fail_if_poisoned()?;
        if !self.backend.contains(&mut self.pool, tid)? {
            return Ok(false);
        }
        self.commit_mutation(LogRecord::Delete { tid }, metrics)?;
        Ok(true)
    }

    /// Fold the buffered state into a new durable base (epoch + 1) and
    /// truncate the WAL. The sequence — journal, install, snapshot
    /// commit, WAL reset, journal clear — is crash-consistent at every
    /// boundary; see the module docs and DESIGN.md §6f. A failure
    /// mid-checkpoint poisons the index (reopen to recover).
    pub fn checkpoint(&mut self) -> Result<()> {
        self.fail_if_poisoned()?;
        match self.checkpoint_inner() {
            Ok(()) => Ok(()),
            Err(e) => Err(self.poison(e)),
        }
    }

    fn crash_point(&mut self, here: CheckpointCrash) -> Result<()> {
        if self.config.crash == here {
            self.config.crash = CheckpointCrash::None;
            return Err(StorageError::Io {
                op: "checkpoint",
                pid: None,
                detail: format!("injected crash {here:?}"),
            });
        }
        Ok(())
    }

    fn checkpoint_inner(&mut self) -> Result<()> {
        let new_epoch = self.epoch + 1;
        let dirty = self.pool.dirty_pages();
        // Statistics first: the snapshot must describe the state it
        // accompanies, not the state at the previous checkpoint.
        self.backend.refresh_stats();
        let blob = wrap_blob(new_epoch, &self.backend.snapshot_blob());

        // Phase 1: write the complete redo image to the side journal and
        // sync it. Nothing durable is overwritten yet. (An error return
        // leaves the current phase span open; the tracer force-closes it
        // when the trace is taken.)
        let sj = self.pool.trace_begin(Phase::CheckpointJournal);
        self.storage.journal.truncate(0)?;
        let mut journal = Wal::new(
            self.storage.journal.clone(),
            WalConfig {
                group_commit: usize::MAX,
            },
        );
        journal.append(&j_header(self.epoch, new_epoch, dirty.len() as u32))?;
        for (pid, buf) in &dirty {
            journal.append(&j_page(*pid, buf))?;
        }
        journal.append(&j_snapshot(&blob))?;
        journal.append(&[J_COMMIT])?;
        journal.flush()?;
        self.pool.trace_end(sj);
        self.crash_point(CheckpointCrash::AfterJournal)?;

        // Phase 2: install the dirty pages in place. A crash here is
        // repaired by redoing the journal.
        let si = self.pool.trace_begin(Phase::CheckpointInstall);
        for (pid, buf) in &dirty {
            self.storage.store.write(*pid, buf)?;
        }
        self.pool.trace_end(si);
        self.crash_point(CheckpointCrash::AfterInstall)?;

        // Phase 3: atomically publish the new metadata snapshot. This is
        // the commit point of the checkpoint.
        let sc = self.pool.trace_begin(Phase::CheckpointCommit);
        self.storage.slot.commit(&blob)?;
        self.pool.trace_end(sc);
        self.crash_point(CheckpointCrash::AfterSnapshot)?;

        // Phases 4 and 5 share one span: both are epoch-retirement
        // bookkeeping (new log, cleared journal, clean pool).
        let sr = self.pool.trace_begin(Phase::CheckpointReset);

        // Phase 4: start the new epoch's log. An old log surviving a
        // crash here is recognized as stale by its begin-epoch record.
        self.wal.reset()?;
        self.epoch = new_epoch;
        self.wal
            .append(&LogRecord::BeginEpoch(new_epoch).encode())?;
        self.wal.flush()?;
        self.crash_point(CheckpointCrash::AfterWalReset)?;

        // Phase 5: retire the journal and the dirty bookkeeping.
        self.storage.journal.truncate(0)?;
        self.pool.mark_all_clean();
        self.mutations_since_checkpoint = 0;
        self.pool.trace_end(sr);
        Ok(())
    }

    /// Force pending group-commit records to disk (no-op at window 1).
    /// Call before process exit when running with a wider window.
    pub fn flush_wal(&mut self) -> Result<()> {
        self.fail_if_poisoned()?;
        let before = self.wal.stats();
        let t0 = self.pool.tracer_mut().now_ns();
        let out = self.wal.flush();
        if let Some(t0) = t0 {
            let dur = self
                .pool
                .tracer_mut()
                .now_ns()
                .unwrap_or(t0)
                .saturating_sub(t0);
            if self.wal.stats().fsyncs > before.fsyncs {
                self.pool.tracer_mut().record_wal_sync(dur);
            }
        }
        out
    }

    /// Enable latency tracing on this handle's private pool: subsequent
    /// mutations, checkpoints, and queries record spans and WAL/buffer
    /// latency histograms against `clock` until [`DurableIndex::take_trace`]
    /// collects them.
    pub fn enable_tracing(&mut self, clock: Arc<dyn Clock>) {
        self.pool.set_tracer(Tracer::enabled(clock));
    }

    /// Collect the trace accumulated since [`DurableIndex::enable_tracing`]
    /// and disable tracing. `None` when tracing was never enabled.
    pub fn take_trace(&mut self) -> Option<QueryTrace> {
        self.pool.take_trace()
    }

    /// PETQ against the live (buffered) state.
    pub fn petq(&mut self, query: &EqQuery) -> Result<Vec<Match>> {
        self.petq_metered(query, &mut QueryMetrics::new())
    }

    /// PETQ with execution counters.
    pub fn petq_metered(
        &mut self,
        query: &EqQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        self.fail_if_poisoned()?;
        self.backend.petq_metered(&mut self.pool, query, metrics)
    }

    /// Top-k against the live state.
    pub fn top_k(&mut self, query: &TopKQuery) -> Result<Vec<Match>> {
        self.top_k_metered(query, &mut QueryMetrics::new())
    }

    /// Top-k with execution counters.
    pub fn top_k_metered(
        &mut self,
        query: &TopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        self.fail_if_poisoned()?;
        self.backend.top_k_metered(&mut self.pool, query, metrics)
    }

    /// DSTQ against the live state.
    pub fn dstq(&mut self, query: &DstQuery) -> Result<Vec<Match>> {
        self.dstq_metered(query, &mut QueryMetrics::new())
    }

    /// DSTQ with execution counters.
    pub fn dstq_metered(
        &mut self,
        query: &DstQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        self.fail_if_poisoned()?;
        self.backend.dstq_metered(&mut self.pool, query, metrics)
    }

    /// DSQ-top-k against the live state.
    pub fn ds_top_k(&mut self, query: &DsTopKQuery) -> Result<Vec<Match>> {
        self.fail_if_poisoned()?;
        self.backend
            .ds_top_k_metered(&mut self.pool, query, &mut QueryMetrics::new())
    }

    /// Current checkpoint epoch (starts at 1 for a fresh index).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether a post-log failure has poisoned this handle.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Cumulative WAL write-side counters for this handle.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Records replayed by the recovery that opened this handle (0 for a
    /// freshly created index or a clean open).
    pub fn replayed_records(&self) -> u64 {
        self.replayed_records
    }

    /// Mutations logged since the last checkpoint.
    pub fn mutations_since_checkpoint(&self) -> u64 {
        self.mutations_since_checkpoint
    }

    /// Number of indexed tuples.
    pub fn tuple_count(&self) -> u64 {
        self.backend.tuple_count()
    }

    /// The wrapped backend (read-only).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The backend and the index's pool, for read-side helpers that need
    /// both (invariant checks, tuple lookups). Mutating the backend
    /// through this bypasses the log and forfeits crash safety.
    pub fn parts_mut(&mut self) -> (&mut B, &mut BufferPool) {
        (&mut self.backend, &mut self.pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncat_core::{CatId, Domain};
    use uncat_inverted::InvertedIndex;
    use uncat_pdrtree::PdrConfig;
    use uncat_storage::{FaultLog, LogFault};

    fn uda(pairs: &[(u32, f32)]) -> Uda {
        Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
    }

    fn inverted_storage() -> (DurableStorage, DurableIndex<InvertedBackend>) {
        let storage = DurableStorage::in_memory();
        let idx = DurableIndex::create(storage.clone(), DurableConfig::default(), |_pool| {
            Ok(InvertedBackend::new(InvertedIndex::new(Domain::anonymous(
                8,
            ))))
        })
        .unwrap();
        (storage, idx)
    }

    #[test]
    fn log_record_codec_roundtrips() {
        let records = [
            LogRecord::BeginEpoch(7),
            LogRecord::Insert {
                tid: 3,
                uda: uda(&[(0, 0.25), (5, 0.75)]),
            },
            LogRecord::Update {
                tid: u64::MAX,
                uda: uda(&[(2, 1.0)]),
            },
            LogRecord::Delete { tid: 0 },
        ];
        for r in &records {
            assert_eq!(&LogRecord::decode(&r.encode()).unwrap(), r);
        }
        assert!(LogRecord::decode(&[]).is_err());
        assert!(LogRecord::decode(&[99]).is_err());
        assert!(LogRecord::decode(&[REC_DELETE, 1, 2]).is_err());
        let mut trailing = LogRecord::Delete { tid: 9 }.encode();
        trailing.push(0);
        assert!(LogRecord::decode(&trailing).is_err());
    }

    #[test]
    fn unsynced_snapshot_wrapper_rejects_garbage() {
        let blob = wrap_blob(4, b"payload");
        let (e, inner) = unwrap_blob(&blob).unwrap();
        assert_eq!(e, 4);
        assert_eq!(inner, b"payload");
        assert!(unwrap_blob(b"UDX").is_err());
        assert!(unwrap_blob(b"XXXX01234567").is_err());
    }

    #[test]
    fn mutations_survive_a_reopen_via_wal_replay() {
        let (storage, mut idx) = inverted_storage();
        idx.insert(1, &uda(&[(0, 0.6), (1, 0.4)])).unwrap();
        idx.insert(2, &uda(&[(1, 1.0)])).unwrap();
        idx.update(1, &uda(&[(2, 1.0)])).unwrap();
        assert!(idx.delete(2).unwrap());
        assert!(!idx.delete(2).unwrap(), "double delete is a clean no-op");
        drop(idx); // no checkpoint: durable pages still hold epoch 1

        let (mut idx, report) =
            DurableIndex::<InvertedBackend>::open(storage, DurableConfig::default()).unwrap();
        assert_eq!(report.replayed_records, 4);
        assert_eq!(report.epoch, 1);
        assert!(!report.journal_redone);
        assert_eq!(idx.tuple_count(), 1);
        let hits = idx.petq(&EqQuery::new(uda(&[(2, 1.0)]), 0.5)).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].tid, 1);
    }

    #[test]
    fn checkpoint_truncates_the_log_and_reopen_replays_nothing() {
        let (storage, mut idx) = inverted_storage();
        for t in 0..20u64 {
            idx.insert(t, &uda(&[((t % 8) as u32, 1.0)])).unwrap();
        }
        idx.checkpoint().unwrap();
        assert_eq!(idx.epoch(), 2);
        assert_eq!(idx.mutations_since_checkpoint(), 0);
        drop(idx);

        let (mut idx, report) =
            DurableIndex::<InvertedBackend>::open(storage, DurableConfig::default()).unwrap();
        assert_eq!(report.replayed_records, 0);
        assert_eq!(report.epoch, 2);
        assert_eq!(idx.tuple_count(), 20);
        let hits = idx.petq(&EqQuery::new(uda(&[(3, 1.0)]), 0.9)).unwrap();
        assert_eq!(hits.len(), 3, "tids 3, 11, 19");
    }

    #[test]
    fn auto_checkpoint_fires_by_mutation_count() {
        let storage = DurableStorage::in_memory();
        let config = DurableConfig {
            checkpoint_every: 4,
            ..DurableConfig::default()
        };
        let mut idx = DurableIndex::create(storage, config, |_pool| {
            Ok(InvertedBackend::new(InvertedIndex::new(Domain::anonymous(
                4,
            ))))
        })
        .unwrap();
        assert_eq!(idx.epoch(), 1);
        for t in 0..8u64 {
            idx.insert(t, &uda(&[((t % 4) as u32, 1.0)])).unwrap();
        }
        assert_eq!(idx.epoch(), 3, "two automatic checkpoints");
        assert_eq!(idx.mutations_since_checkpoint(), 0);
    }

    #[test]
    fn duplicate_insert_is_rejected_before_logging() {
        let (_storage, mut idx) = inverted_storage();
        idx.insert(5, &uda(&[(0, 1.0)])).unwrap();
        let appended = idx.wal_stats().records_appended;
        assert_eq!(
            idx.insert(5, &uda(&[(1, 1.0)])),
            Err(StorageError::Duplicate { key: 5 })
        );
        assert_eq!(
            idx.wal_stats().records_appended,
            appended,
            "a rejected insert writes nothing"
        );
        assert!(!idx.is_poisoned(), "pre-log rejection does not poison");
    }

    #[test]
    fn append_failure_poisons_and_reopen_recovers() {
        let store = InMemoryDisk::shared();
        let flog = Arc::new(FaultLog::new(MemLog::shared()));
        let storage = DurableStorage {
            store,
            wal: flog.clone() as SharedLog,
            journal: MemLog::shared(),
            slot: Arc::new(MemSlot::new()),
        };
        let mut idx = DurableIndex::create(storage.clone(), DurableConfig::default(), |_pool| {
            Ok(InvertedBackend::new(InvertedIndex::new(Domain::anonymous(
                4,
            ))))
        })
        .unwrap();
        idx.insert(1, &uda(&[(0, 1.0)])).unwrap();

        // Checkpoint at create appended begin-epoch (1 append); insert is
        // the 2nd. Fail the 3rd, keeping a 5-byte torn prefix.
        flog.arm(LogFault::ShortAppend {
            after: flog.appends_so_far() + 1,
            keep: 5,
        });
        let err = idx.insert(2, &uda(&[(1, 1.0)])).unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }), "{err:?}");
        assert!(idx.is_poisoned());
        assert_eq!(
            idx.insert(3, &uda(&[(2, 1.0)])),
            Err(StorageError::Poisoned)
        );
        assert_eq!(idx.delete(1), Err(StorageError::Poisoned));
        assert_eq!(idx.checkpoint(), Err(StorageError::Poisoned));
        drop(idx);

        let (mut idx, report) =
            DurableIndex::<InvertedBackend>::open(storage, DurableConfig::default()).unwrap();
        assert!(
            matches!(report.wal_tail, TailStatus::Torn { .. }),
            "the short append left a torn tail: {:?}",
            report.wal_tail
        );
        assert_eq!(report.replayed_records, 1, "only the acknowledged insert");
        assert_eq!(idx.tuple_count(), 1);
        // The repaired log accepts new mutations.
        idx.insert(2, &uda(&[(1, 1.0)])).unwrap();
        assert_eq!(idx.tuple_count(), 2);
    }

    #[test]
    fn checkpoint_crash_after_journal_is_redone_on_open() {
        let storage = DurableStorage::in_memory();
        let mut idx = DurableIndex::create(storage.clone(), DurableConfig::default(), |_pool| {
            Ok(InvertedBackend::new(InvertedIndex::new(Domain::anonymous(
                4,
            ))))
        })
        .unwrap();
        idx.insert(1, &uda(&[(0, 1.0)])).unwrap();
        idx.insert(2, &uda(&[(3, 1.0)])).unwrap();
        idx.config.crash = CheckpointCrash::AfterJournal;
        let err = idx.checkpoint().unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }), "{err:?}");
        assert!(idx.is_poisoned());
        drop(idx);

        let (mut idx, report) =
            DurableIndex::<InvertedBackend>::open(storage, DurableConfig::default()).unwrap();
        assert!(report.journal_redone, "complete journal must be redone");
        assert_eq!(report.epoch, 2, "the interrupted checkpoint completed");
        assert!(report.stale_wal_discarded, "old-epoch log is not replayed");
        assert_eq!(idx.tuple_count(), 2);
        let hits = idx.petq(&EqQuery::new(uda(&[(3, 1.0)]), 0.9)).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn pdr_tree_backend_roundtrips_through_create_and_open() {
        let storage = DurableStorage::in_memory();
        let mut idx = DurableIndex::create(storage.clone(), DurableConfig::default(), |pool| {
            PdrTree::new(Domain::anonymous(6), PdrConfig::default(), pool)
        })
        .unwrap();
        for t in 0..30u64 {
            idx.insert(
                t,
                &uda(&[((t % 6) as u32, 0.7), (((t + 1) % 6) as u32, 0.3)]),
            )
            .unwrap();
        }
        assert!(idx.delete(7).unwrap());
        idx.update(8, &uda(&[(0, 1.0)])).unwrap();
        drop(idx);

        let (mut idx, report) =
            DurableIndex::<PdrTree>::open(storage, DurableConfig::default()).unwrap();
        assert_eq!(report.replayed_records, 32);
        assert_eq!(idx.tuple_count(), 29);
        let (tree, pool) = idx.parts_mut();
        assert_eq!(tree.check_invariants(pool).unwrap(), 29);
        assert_eq!(tree.find_tuple(pool, 8).unwrap(), Some(uda(&[(0, 1.0)])));
        assert_eq!(tree.find_tuple(pool, 7).unwrap(), None);
    }

    #[test]
    fn opening_without_a_snapshot_is_a_typed_error() {
        let storage = DurableStorage::in_memory();
        let err = match DurableIndex::<InvertedBackend>::open(storage, DurableConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("open without a snapshot must fail"),
        };
        assert!(matches!(err, StorageError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn group_commit_batches_appends_per_fsync() {
        let storage = DurableStorage::in_memory();
        let config = DurableConfig {
            group_commit: 4,
            ..DurableConfig::default()
        };
        let mut idx = DurableIndex::create(storage, config, |_pool| {
            Ok(InvertedBackend::new(InvertedIndex::new(Domain::anonymous(
                4,
            ))))
        })
        .unwrap();
        let base = idx.wal_stats();
        let mut metrics = QueryMetrics::new();
        for t in 0..8u64 {
            idx.insert_metered(t, &uda(&[((t % 4) as u32, 1.0)]), &mut metrics)
                .unwrap();
        }
        let s = idx.wal_stats();
        assert_eq!(s.records_appended - base.records_appended, 8);
        assert_eq!(
            s.group_commit_batches - base.group_commit_batches,
            2,
            "two windows of four"
        );
        assert_eq!(metrics.wal_appends, 8);
        assert_eq!(metrics.wal_fsyncs, 2);
    }
}
