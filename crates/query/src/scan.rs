//! Full-scan baseline: no index, just the tuple heap.
//!
//! Reads every heap page for every query. This is both the correctness
//! oracle for the index structures and the "what the paper's indexes are
//! an alternative to" comparison point.

use uncat_core::equality::{eq_prob, meets_threshold};
use uncat_core::query::{
    sort_matches_asc, sort_matches_desc, DsTopKQuery, DstQuery, EqQuery, Match, TopKQuery,
};
use uncat_core::topk::{BottomKHeap, TopKHeap};
use uncat_core::{codec, Uda};
use uncat_storage::{BufferPool, HeapFile, QueryMetrics, Result, StorageError};

use crate::index_trait::UncertainIndex;

/// An unindexed relation: a heap file of `(tid, UDA)` records.
pub struct ScanBaseline {
    heap: HeapFile,
    count: u64,
}

impl ScanBaseline {
    /// Load a relation into a fresh heap.
    pub fn build<'a, I>(pool: &mut BufferPool, tuples: I) -> Result<ScanBaseline>
    where
        I: IntoIterator<Item = (u64, &'a Uda)>,
    {
        let mut heap = HeapFile::new();
        let mut count = 0;
        for (tid, uda) in tuples {
            let mut rec = Vec::with_capacity(8 + codec::encoded_len(uda));
            rec.extend_from_slice(&tid.to_le_bytes());
            codec::encode(uda, &mut rec);
            heap.insert(pool, &rec)?;
            count += 1;
        }
        Ok(ScanBaseline { heap, count })
    }

    /// Visit every tuple (one page read per heap page). A record that no
    /// longer decodes is a [`StorageError::Corrupt`].
    pub fn scan(&self, pool: &mut BufferPool, mut f: impl FnMut(u64, &Uda)) -> Result<()> {
        let mut decode_err: Option<StorageError> = None;
        self.heap.scan(pool, |_, bytes| {
            if decode_err.is_some() {
                return;
            }
            let Some(header) = bytes.get(..8).and_then(|s| <[u8; 8]>::try_from(s).ok()) else {
                decode_err = Some(StorageError::Corrupt(
                    "tuple record shorter than its tid header",
                ));
                return;
            };
            let tid = u64::from_le_bytes(header);
            match codec::decode(&bytes[8..]) {
                Ok((uda, _)) => f(tid, &uda),
                Err(_) => decode_err = Some(StorageError::Corrupt("stored UDA does not decode")),
            }
        })?;
        match decode_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Pages occupied by the relation.
    pub fn num_pages(&self) -> usize {
        self.heap.num_pages()
    }

    /// Windowed-equality threshold query over a totally ordered domain:
    /// all tuples with `Pr(|q − t| ≤ c) ≥ tau` (the paper's §2 relaxation
    /// of probabilistic equality). Evaluated by scan; ordering follows the
    /// window probability, descending.
    pub fn window_petq(
        &self,
        pool: &mut BufferPool,
        q: &Uda,
        window: u32,
        tau: f64,
    ) -> Result<Vec<Match>> {
        let mut out = Vec::new();
        self.scan(pool, |tid, t| {
            let pr = uncat_core::ordered::pr_within(q, t, window);
            if meets_threshold(pr, tau) {
                out.push(Match::new(tid, pr));
            }
        })?;
        sort_matches_desc(&mut out);
        Ok(out)
    }

    /// `Pr(q < t) ≥ tau` over a totally ordered domain, by scan.
    pub fn less_than_petq(&self, pool: &mut BufferPool, q: &Uda, tau: f64) -> Result<Vec<Match>> {
        let mut out = Vec::new();
        self.scan(pool, |tid, t| {
            let pr = uncat_core::ordered::pr_less(q, t);
            if meets_threshold(pr, tau) {
                out.push(Match::new(tid, pr));
            }
        })?;
        sort_matches_desc(&mut out);
        Ok(out)
    }
}

impl UncertainIndex for ScanBaseline {
    fn petq_metered(
        &self,
        pool: &mut BufferPool,
        query: &EqQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        let mut out = Vec::new();
        self.scan(pool, |tid, t| {
            metrics.heap_tuples_scanned += 1;
            let pr = eq_prob(&query.q, t);
            if meets_threshold(pr, query.tau) {
                out.push(Match::new(tid, pr));
            }
        })?;
        sort_matches_desc(&mut out);
        Ok(out)
    }

    fn top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        let mut heap = TopKHeap::new(query.k, 0.0);
        self.scan(pool, |tid, t| {
            metrics.heap_tuples_scanned += 1;
            let pr = eq_prob(&query.q, t);
            if pr > 0.0 {
                heap.offer(tid, pr);
            }
        })?;
        Ok(heap.into_sorted())
    }

    fn dstq_metered(
        &self,
        pool: &mut BufferPool,
        query: &DstQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        let mut out = Vec::new();
        self.scan(pool, |tid, t| {
            metrics.heap_tuples_scanned += 1;
            let d = query.divergence.eval(query.q.entries(), t.entries());
            if d <= query.tau_d {
                out.push(Match::new(tid, d));
            }
        })?;
        sort_matches_asc(&mut out);
        Ok(out)
    }

    fn ds_top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &DsTopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        let mut heap = BottomKHeap::new(query.k);
        self.scan(pool, |tid, t| {
            metrics.heap_tuples_scanned += 1;
            heap.offer(tid, query.divergence.eval(query.q.entries(), t.entries()));
        })?;
        Ok(heap.into_sorted())
    }

    fn tuple_count(&self) -> u64 {
        self.count
    }

    fn backend_name(&self) -> &'static str {
        "scan"
    }
}
