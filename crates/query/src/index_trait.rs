//! The common interface over index structures.

use uncat_core::query::{DsTopKQuery, DstQuery, EqQuery, Match, TopKQuery};
use uncat_storage::{BufferPool, QueryMetrics, Result};

use uncat_inverted::{InvertedIndex, Strategy};
use uncat_pdrtree::PdrTree;

/// Anything that can answer the paper's query set. All three queries
/// return exact scores in canonical order (descending probability for
/// equality, ascending divergence for similarity).
///
/// Every method is fallible: an I/O error or corrupted page surfaces as
/// `Err(StorageError)` from the one query that hit it, leaving the index
/// and the process intact.
///
/// The `*_metered` methods are the primitive operations: they thread a
/// [`QueryMetrics`] through the search so callers can observe *how* the
/// answer was computed (postings scanned, nodes pruned, candidates
/// verified — see `docs/METRICS.md`). The unmetered methods are provided
/// conveniences that run against scratch counters.
pub trait UncertainIndex {
    /// Probabilistic equality threshold query (Definition 4), with
    /// execution counters.
    fn petq_metered(
        &self,
        pool: &mut BufferPool,
        query: &EqQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>>;
    /// PEQ-top-k, with execution counters.
    fn top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>>;
    /// Distributional similarity threshold query (Definition 5), with
    /// execution counters.
    fn dstq_metered(
        &self,
        pool: &mut BufferPool,
        query: &DstQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>>;
    /// DSQ-top-k, with execution counters.
    fn ds_top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &DsTopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>>;
    /// Number of indexed tuples.
    fn tuple_count(&self) -> u64;
    /// Short name for reports ("inverted", "pdr-tree", "scan").
    fn backend_name(&self) -> &'static str;

    /// Probabilistic equality threshold query (Definition 4).
    fn petq(&self, pool: &mut BufferPool, query: &EqQuery) -> Result<Vec<Match>> {
        self.petq_metered(pool, query, &mut QueryMetrics::new())
    }
    /// PEQ-top-k.
    fn top_k(&self, pool: &mut BufferPool, query: &TopKQuery) -> Result<Vec<Match>> {
        self.top_k_metered(pool, query, &mut QueryMetrics::new())
    }
    /// Distributional similarity threshold query (Definition 5).
    fn dstq(&self, pool: &mut BufferPool, query: &DstQuery) -> Result<Vec<Match>> {
        self.dstq_metered(pool, query, &mut QueryMetrics::new())
    }
    /// DSQ-top-k: the `k` distributionally closest tuples.
    fn ds_top_k(&self, pool: &mut BufferPool, query: &DsTopKQuery) -> Result<Vec<Match>> {
        self.ds_top_k_metered(pool, query, &mut QueryMetrics::new())
    }
}

/// The inverted index paired with a fixed search strategy.
pub struct InvertedBackend {
    /// The underlying index.
    pub index: InvertedIndex,
    /// Strategy used for threshold queries.
    pub strategy: Strategy,
}

impl InvertedBackend {
    /// Wrap an index with the default (NRA) threshold strategy.
    pub fn new(index: InvertedIndex) -> InvertedBackend {
        InvertedBackend {
            index,
            strategy: Strategy::Nra,
        }
    }

    /// Wrap an index with an explicit strategy.
    pub fn with_strategy(index: InvertedIndex, strategy: Strategy) -> InvertedBackend {
        InvertedBackend { index, strategy }
    }
}

impl UncertainIndex for InvertedBackend {
    fn petq_metered(
        &self,
        pool: &mut BufferPool,
        query: &EqQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        self.index.petq_metered(pool, query, self.strategy, metrics)
    }

    fn top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        self.index.top_k_metered(pool, query, metrics)
    }

    fn dstq_metered(
        &self,
        pool: &mut BufferPool,
        query: &DstQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        self.index.dstq_metered(pool, query, metrics)
    }

    fn ds_top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &DsTopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        self.index.ds_top_k_metered(pool, query, metrics)
    }

    fn tuple_count(&self) -> u64 {
        self.index.len() as u64
    }

    fn backend_name(&self) -> &'static str {
        "inverted"
    }
}

impl UncertainIndex for PdrTree {
    fn petq_metered(
        &self,
        pool: &mut BufferPool,
        query: &EqQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        PdrTree::petq_metered(self, pool, query, metrics)
    }

    fn top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        PdrTree::top_k_metered(self, pool, query, metrics)
    }

    fn dstq_metered(
        &self,
        pool: &mut BufferPool,
        query: &DstQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        PdrTree::dstq_metered(self, pool, query, metrics)
    }

    fn ds_top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &DsTopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        PdrTree::ds_top_k_metered(self, pool, query, metrics)
    }

    fn tuple_count(&self) -> u64 {
        self.len()
    }

    fn backend_name(&self) -> &'static str {
        "pdr-tree"
    }
}
