//! The common interface over index structures.

use uncat_core::query::{DsTopKQuery, DstQuery, EqQuery, Match, TopKQuery};
use uncat_storage::{BufferPool, QueryMetrics, Result};

use uncat_inverted::{InvertedIndex, Strategy};
use uncat_pdrtree::PdrTree;

/// Anything that can answer the paper's query set. All three queries
/// return exact scores in canonical order (descending probability for
/// equality, ascending divergence for similarity).
///
/// Every method is fallible: an I/O error or corrupted page surfaces as
/// `Err(StorageError)` from the one query that hit it, leaving the index
/// and the process intact.
///
/// The `*_metered` methods are the primitive operations: they thread a
/// [`QueryMetrics`] through the search so callers can observe *how* the
/// answer was computed (postings scanned, nodes pruned, candidates
/// verified — see `docs/METRICS.md`). The unmetered methods are provided
/// conveniences that run against scratch counters.
pub trait UncertainIndex {
    /// Probabilistic equality threshold query (Definition 4), with
    /// execution counters.
    fn petq_metered(
        &self,
        pool: &mut BufferPool,
        query: &EqQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>>;
    /// PEQ-top-k, with execution counters.
    fn top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>>;
    /// Distributional similarity threshold query (Definition 5), with
    /// execution counters.
    fn dstq_metered(
        &self,
        pool: &mut BufferPool,
        query: &DstQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>>;
    /// DSQ-top-k, with execution counters.
    fn ds_top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &DsTopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>>;
    /// Number of indexed tuples.
    fn tuple_count(&self) -> u64;
    /// Short name for reports ("inverted", "pdr-tree", "scan").
    fn backend_name(&self) -> &'static str;

    /// PEQ-top-k under an external score *floor*: the `k` best matches
    /// scoring at least `floor`, with execution counters. The PEJ-top-k
    /// join propagates its current k-th best pair score into every probe
    /// through this method; an implementation that seeds its dynamic
    /// threshold with the floor (both paper indexes do) prunes everything
    /// the caller would discard anyway, and never does *more* work than
    /// [`UncertainIndex::top_k_metered`] — the threshold only starts
    /// higher. Non-positive and non-finite floors mean "no floor". The
    /// provided default runs a plain top-k and filters, so backends
    /// without floor-aware search stay correct, just unaccelerated.
    fn top_k_floored_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        floor: f64,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        let mut out = self.top_k_metered(pool, query, metrics)?;
        if floor.is_finite() && floor > 0.0 {
            out.retain(|m| m.score >= floor);
        }
        Ok(out)
    }

    /// Probabilistic equality threshold query (Definition 4).
    fn petq(&self, pool: &mut BufferPool, query: &EqQuery) -> Result<Vec<Match>> {
        self.petq_metered(pool, query, &mut QueryMetrics::new())
    }
    /// PEQ-top-k.
    fn top_k(&self, pool: &mut BufferPool, query: &TopKQuery) -> Result<Vec<Match>> {
        self.top_k_metered(pool, query, &mut QueryMetrics::new())
    }
    /// Distributional similarity threshold query (Definition 5).
    fn dstq(&self, pool: &mut BufferPool, query: &DstQuery) -> Result<Vec<Match>> {
        self.dstq_metered(pool, query, &mut QueryMetrics::new())
    }
    /// DSQ-top-k: the `k` distributionally closest tuples.
    fn ds_top_k(&self, pool: &mut BufferPool, query: &DsTopKQuery) -> Result<Vec<Match>> {
        self.ds_top_k_metered(pool, query, &mut QueryMetrics::new())
    }
}

/// Boxed indexes answer queries by delegation, so heterogeneous backend
/// collections (`Box<dyn UncertainIndex>`) work with the generic join
/// and batch executors.
impl<T: UncertainIndex + ?Sized> UncertainIndex for Box<T> {
    fn petq_metered(
        &self,
        pool: &mut BufferPool,
        query: &EqQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        (**self).petq_metered(pool, query, metrics)
    }

    fn top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        (**self).top_k_metered(pool, query, metrics)
    }

    fn dstq_metered(
        &self,
        pool: &mut BufferPool,
        query: &DstQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        (**self).dstq_metered(pool, query, metrics)
    }

    fn ds_top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &DsTopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        (**self).ds_top_k_metered(pool, query, metrics)
    }

    fn tuple_count(&self) -> u64 {
        (**self).tuple_count()
    }

    fn backend_name(&self) -> &'static str {
        (**self).backend_name()
    }

    fn top_k_floored_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        floor: f64,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        (**self).top_k_floored_metered(pool, query, floor, metrics)
    }
}

/// The inverted index paired with a fixed search strategy.
pub struct InvertedBackend {
    /// The underlying index.
    pub index: InvertedIndex,
    /// Strategy used for threshold queries.
    pub strategy: Strategy,
}

impl InvertedBackend {
    /// Wrap an index with the default (NRA) threshold strategy.
    pub fn new(index: InvertedIndex) -> InvertedBackend {
        InvertedBackend {
            index,
            strategy: Strategy::Nra,
        }
    }

    /// Wrap an index with an explicit strategy.
    pub fn with_strategy(index: InvertedIndex, strategy: Strategy) -> InvertedBackend {
        InvertedBackend { index, strategy }
    }
}

impl UncertainIndex for InvertedBackend {
    fn petq_metered(
        &self,
        pool: &mut BufferPool,
        query: &EqQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        self.index.petq_metered(pool, query, self.strategy, metrics)
    }

    fn top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        self.index.top_k_metered(pool, query, metrics)
    }

    fn dstq_metered(
        &self,
        pool: &mut BufferPool,
        query: &DstQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        self.index.dstq_metered(pool, query, metrics)
    }

    fn ds_top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &DsTopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        self.index.ds_top_k_metered(pool, query, metrics)
    }

    fn tuple_count(&self) -> u64 {
        self.index.len() as u64
    }

    fn backend_name(&self) -> &'static str {
        "inverted"
    }

    fn top_k_floored_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        floor: f64,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        self.index
            .top_k_floored_metered(pool, query, floor, metrics)
    }
}

impl UncertainIndex for PdrTree {
    fn petq_metered(
        &self,
        pool: &mut BufferPool,
        query: &EqQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        PdrTree::petq_metered(self, pool, query, metrics)
    }

    fn top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        PdrTree::top_k_metered(self, pool, query, metrics)
    }

    fn dstq_metered(
        &self,
        pool: &mut BufferPool,
        query: &DstQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        PdrTree::dstq_metered(self, pool, query, metrics)
    }

    fn ds_top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &DsTopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        PdrTree::ds_top_k_metered(self, pool, query, metrics)
    }

    fn tuple_count(&self) -> u64 {
        self.len()
    }

    fn backend_name(&self) -> &'static str {
        "pdr-tree"
    }

    fn top_k_floored_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        floor: f64,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        PdrTree::top_k_floored_metered(self, pool, query, floor, metrics)
    }
}
