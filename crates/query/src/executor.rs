//! Per-query execution with the paper's buffer discipline.
//!
//! "All experiments are conducted with a buffer manager that allocates 100
//! blocks to each query": the executor gives every query a fresh pool over
//! the shared store and reports the I/O it incurred.
//!
//! Failure isolation: every entry point returns `Result`, so a checksum
//! mismatch or I/O error on one query degrades that query alone — the
//! executor, the index, and every other query remain usable.

use uncat_core::query::{DstQuery, EqQuery, Match, TopKQuery};
use uncat_storage::buffer::DEFAULT_FRAMES;
use uncat_storage::{BufferPool, IoStats, Result, SharedStore};

use crate::index_trait::UncertainIndex;

/// Result of one query execution.
#[derive(Debug)]
pub struct QueryOutcome {
    /// Qualifying tuples, canonical order.
    pub matches: Vec<Match>,
    /// I/O charged to this query (fresh buffer pool).
    pub io: IoStats,
}

impl QueryOutcome {
    /// The paper's y-axis: physical page reads.
    pub fn reads(&self) -> u64 {
        self.io.physical_reads
    }

    /// Result selectivity relative to `n` tuples.
    pub fn selectivity(&self, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.matches.len() as f64 / n as f64
        }
    }
}

/// Runs queries against an index with a fresh buffer pool each time.
pub struct Executor<I> {
    index: I,
    store: SharedStore,
    frames: usize,
}

impl<I: UncertainIndex> Executor<I> {
    /// Executor with the paper's 100-frame per-query buffers.
    pub fn new(index: I, store: SharedStore) -> Executor<I> {
        Executor {
            index,
            store,
            frames: DEFAULT_FRAMES,
        }
    }

    /// Executor with a custom per-query buffer size (for the buffer-size
    /// ablation).
    pub fn with_frames(index: I, store: SharedStore, frames: usize) -> Executor<I> {
        Executor {
            index,
            store,
            frames,
        }
    }

    /// The wrapped index.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Per-query frame budget.
    pub fn frames(&self) -> usize {
        self.frames
    }

    fn run(
        &self,
        f: impl FnOnce(&I, &mut BufferPool) -> Result<Vec<Match>>,
    ) -> Result<QueryOutcome> {
        let mut pool = BufferPool::with_capacity(self.store.clone(), self.frames);
        let matches = f(&self.index, &mut pool)?;
        Ok(QueryOutcome {
            matches,
            io: pool.stats(),
        })
    }

    /// Run a PETQ with a cold, private buffer.
    pub fn petq(&self, query: &EqQuery) -> Result<QueryOutcome> {
        self.run(|i, p| i.petq(p, query))
    }

    /// Run a top-k query with a cold, private buffer.
    pub fn top_k(&self, query: &TopKQuery) -> Result<QueryOutcome> {
        self.run(|i, p| i.top_k(p, query))
    }

    /// Run a DSTQ with a cold, private buffer.
    pub fn dstq(&self, query: &DstQuery) -> Result<QueryOutcome> {
        self.run(|i, p| i.dstq(p, query))
    }

    /// Run a DSQ-top-k with a cold, private buffer.
    pub fn ds_top_k(&self, query: &uncat_core::query::DsTopKQuery) -> Result<QueryOutcome> {
        self.run(|i, p| i.ds_top_k(p, query))
    }
}
