//! Per-query execution with the paper's buffer discipline.
//!
//! "All experiments are conducted with a buffer manager that allocates 100
//! blocks to each query": the executor gives every query a fresh pool over
//! the shared store and reports the I/O it incurred.
//!
//! Failure isolation: every entry point returns `Result`, so a checksum
//! mismatch or I/O error on one query degrades that query alone — the
//! executor, the index, and every other query remain usable.

use std::sync::Arc;

use uncat_core::query::{DstQuery, EqQuery, Match, TopKQuery};
use uncat_storage::buffer::DEFAULT_FRAMES;
use uncat_storage::trace::{Clock, Phase, QueryTrace, Tracer};
use uncat_storage::{BufferPool, IoStats, QueryMetrics, Result, SharedStore};

use crate::index_trait::UncertainIndex;

/// Result of one query execution.
#[derive(Debug)]
pub struct QueryOutcome {
    /// Qualifying tuples, canonical order.
    pub matches: Vec<Match>,
    /// I/O charged to this query (fresh buffer pool).
    pub io: IoStats,
    /// Execution counters for this query (its `io` field equals the
    /// outcome's own `io` — the same pool snapshot is copied into both).
    pub metrics: QueryMetrics,
    /// Latency trace, present when the executor runs with
    /// [`Executor::with_tracing`]: the query's span tree (rooted at a
    /// `query` span) plus I/O latency histograms. `None` when tracing is
    /// off — the zero-overhead default.
    pub trace: Option<QueryTrace>,
}

impl QueryOutcome {
    /// The paper's y-axis: physical page reads.
    pub fn reads(&self) -> u64 {
        self.io.physical_reads
    }

    /// Result selectivity relative to `n` tuples.
    pub fn selectivity(&self, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.matches.len() as f64 / n as f64
        }
    }
}

/// Sum the execution counters of a batch of outcomes — the natural
/// aggregate for "average cost per query" reporting (divide by the batch
/// size). Counters are additive, so summing per-query metrics from any
/// execution order (including [`crate::parallel`] workers) equals the
/// metrics of running the batch sequentially.
pub fn aggregate_metrics<'a, I>(outcomes: I) -> QueryMetrics
where
    I: IntoIterator<Item = &'a QueryOutcome>,
{
    QueryMetrics::sum(outcomes.into_iter().map(|o| &o.metrics))
}

/// Runs queries against an index with a fresh buffer pool each time.
pub struct Executor<I> {
    index: I,
    store: SharedStore,
    frames: usize,
    clock: Option<Arc<dyn Clock>>,
}

impl<I: UncertainIndex> Executor<I> {
    /// Executor with the paper's 100-frame per-query buffers.
    pub fn new(index: I, store: SharedStore) -> Executor<I> {
        Executor {
            index,
            store,
            frames: DEFAULT_FRAMES,
            clock: None,
        }
    }

    /// Executor with a custom per-query buffer size (for the buffer-size
    /// ablation).
    pub fn with_frames(index: I, store: SharedStore, frames: usize) -> Executor<I> {
        Executor {
            index,
            store,
            frames,
            clock: None,
        }
    }

    /// Enable latency tracing: every subsequent query records a span tree
    /// and I/O histograms against `clock` and returns them in
    /// [`QueryOutcome::trace`]. Tests pass a
    /// [`uncat_storage::FakeClock`]; the CLI passes a
    /// [`uncat_storage::MonotonicClock`].
    pub fn with_tracing(mut self, clock: Arc<dyn Clock>) -> Executor<I> {
        self.clock = Some(clock);
        self
    }

    /// The wrapped index.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Per-query frame budget.
    pub fn frames(&self) -> usize {
        self.frames
    }

    fn run(
        &self,
        f: impl FnOnce(&I, &mut BufferPool, &mut QueryMetrics) -> Result<Vec<Match>>,
    ) -> Result<QueryOutcome> {
        let mut pool = BufferPool::with_capacity(self.store.clone(), self.frames);
        if let Some(clock) = &self.clock {
            pool.set_tracer(Tracer::enabled(clock.clone()));
        }
        let root = pool.trace_begin(Phase::Query);
        let mut metrics = QueryMetrics::new();
        let matches = f(&self.index, &mut pool, &mut metrics)?;
        pool.trace_end(root);
        // I/O accounting lives in the pool; the search code never touches
        // `metrics.io`. Copy the final pool snapshot in here so one struct
        // carries the whole cost profile.
        metrics.io = pool.stats();
        Ok(QueryOutcome {
            matches,
            io: pool.stats(),
            metrics,
            trace: pool.take_trace(),
        })
    }

    /// Run a PETQ with a cold, private buffer.
    pub fn petq(&self, query: &EqQuery) -> Result<QueryOutcome> {
        self.run(|i, p, m| i.petq_metered(p, query, m))
    }

    /// Run a top-k query with a cold, private buffer.
    pub fn top_k(&self, query: &TopKQuery) -> Result<QueryOutcome> {
        self.run(|i, p, m| i.top_k_metered(p, query, m))
    }

    /// Run a DSTQ with a cold, private buffer.
    pub fn dstq(&self, query: &DstQuery) -> Result<QueryOutcome> {
        self.run(|i, p, m| i.dstq_metered(p, query, m))
    }

    /// Run a DSQ-top-k with a cold, private buffer.
    pub fn ds_top_k(&self, query: &uncat_core::query::DsTopKQuery) -> Result<QueryOutcome> {
        self.run(|i, p, m| i.ds_top_k_metered(p, query, m))
    }
}
