//! Unified query execution over uncertain-data indexes.
//!
//! * [`UncertainIndex`] — one trait for both paper indexes plus the
//!   full-scan baseline, so benchmarks and joins are generic.
//! * [`ScanBaseline`] — evaluates every query by scanning the tuple heap;
//!   the correctness oracle and the "no index" comparison point.
//! * [`Executor`] — owns a shared store and runs each query against a
//!   fresh buffer pool (the paper's per-query 100-frame setup), reporting
//!   result, I/O, and per-query execution counters
//!   ([`uncat_storage::QueryMetrics`], see `docs/METRICS.md`).
//! * [`join`] — the join operators built on the select primitives: PETJ
//!   (Definition 6), PEJ-top-k, and DSTJ, each with block, index, and
//!   parallel physical plans (the parallel PEJ-top-k plan shares a rising
//!   score floor across workers and propagates it into every probe).
//! * [`parallel`] — batch execution across threads (each query gets its
//!   own buffer pool, exactly like the paper's per-query setup).
//! * [`planner`] — cost-based backend-and-strategy planning from
//!   zero-I/O statistics (DESIGN.md §6h); pairs with the inverted
//!   index's `Strategy::Auto` adaptive executor, which plans and
//!   falls back *within* that backend.
//! * [`durable`] — [`DurableIndex`], crash-safe online mutation for both
//!   paper indexes: write-ahead logging with group commit, no-steal
//!   buffering, redo-journaled checkpoints, and recovery that truncates
//!   torn log tails and replays the rest (DESIGN.md §6f).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
mod executor;
mod index_trait;
pub mod join;
pub mod parallel;
pub mod planner;
mod scan;

pub use durable::{
    split_snapshot, CheckpointCrash, DurableConfig, DurableIndex, DurableStorage, FileSlot,
    LogRecord, MemSlot, MutableBackend, RecoveryReport, SnapshotSlot,
};
pub use executor::{aggregate_metrics, Executor, QueryOutcome};
pub use index_trait::{InvertedBackend, UncertainIndex};
pub use parallel::{batch_trace, BatchPools};
pub use planner::{IndexStats, Plan, PlannedBackend, Planner};
pub use scan::ScanBaseline;
