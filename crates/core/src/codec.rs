//! Compact binary encoding for UDAs, used by the storage layer.
//!
//! Layout (little-endian):
//!
//! ```text
//! u16    n        number of entries
//! n × {  u32 cat, f32 prob  }
//! ```
//!
//! Entries are written in category order, so decoding preserves the [`Uda`]
//! invariants without re-sorting. The paper's description of the leaf pages
//! ("the aforementioned pairs representation; each list of pairs also stores
//! the number of pairs") maps exactly onto this layout.

use crate::error::{Error, Result};
use crate::uda::{Entry, Uda};
use crate::{CatId, Prob};

/// Bytes taken per entry on a page.
pub const ENTRY_BYTES: usize = 4 + 4;
/// Bytes taken by the entry-count header.
pub const HEADER_BYTES: usize = 2;

/// Encoded size of a UDA, in bytes.
pub fn encoded_len(u: &Uda) -> usize {
    HEADER_BYTES + u.len() * ENTRY_BYTES
}

/// Append the encoding of `u` to `out`.
pub fn encode(u: &Uda, out: &mut Vec<u8>) {
    debug_assert!(u.len() <= u16::MAX as usize, "UDA too wide to encode");
    out.reserve(encoded_len(u));
    out.extend_from_slice(&(u.len() as u16).to_le_bytes());
    for e in u.entries() {
        out.extend_from_slice(&e.cat.0.to_le_bytes());
        out.extend_from_slice(&e.prob.to_le_bytes());
    }
}

/// Encode into a fresh buffer.
pub fn encode_to_vec(u: &Uda) -> Vec<u8> {
    let mut v = Vec::with_capacity(encoded_len(u));
    encode(u, &mut v);
    v
}

/// Decode a UDA from the front of `buf`, returning it and the bytes consumed.
pub fn decode(buf: &[u8]) -> Result<(Uda, usize)> {
    if buf.len() < HEADER_BYTES {
        return Err(Error::Corrupt("buffer shorter than header"));
    }
    let n = u16::from_le_bytes([buf[0], buf[1]]) as usize;
    let need = HEADER_BYTES + n * ENTRY_BYTES;
    if buf.len() < need {
        return Err(Error::Corrupt("buffer shorter than declared entries"));
    }
    let mut entries = Vec::with_capacity(n);
    let mut off = HEADER_BYTES;
    let mut prev: Option<CatId> = None;
    let mut mass = 0.0f64;
    for _ in 0..n {
        let cat = CatId(u32::from_le_bytes(
            buf[off..off + 4].try_into().expect("len checked"),
        ));
        let prob = Prob::from_le_bytes(buf[off + 4..off + 8].try_into().expect("len checked"));
        off += ENTRY_BYTES;
        if !(prob > 0.0 && prob <= 1.0) {
            return Err(Error::Corrupt("probability out of range"));
        }
        if let Some(p) = prev {
            if cat <= p {
                return Err(Error::Corrupt("categories not strictly increasing"));
            }
        }
        mass += prob as f64;
        prev = Some(cat);
        entries.push(Entry { cat, prob });
    }
    if entries.is_empty() {
        return Err(Error::Corrupt("empty UDA"));
    }
    if mass > 1.0 + crate::uda::MASS_EPSILON {
        return Err(Error::Corrupt("mass exceeds one"));
    }
    Ok((Uda::from_sorted_unchecked(entries), off))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uda(pairs: &[(u32, f32)]) -> Uda {
        Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
    }

    #[test]
    fn roundtrip() {
        let u = uda(&[(0, 0.125), (7, 0.25), (1000, 0.625)]);
        let bytes = encode_to_vec(&u);
        assert_eq!(bytes.len(), encoded_len(&u));
        let (v, consumed) = decode(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(u, v);
    }

    #[test]
    fn decode_consumes_only_prefix() {
        let u = uda(&[(3, 1.0)]);
        let mut bytes = encode_to_vec(&u);
        bytes.extend_from_slice(&[0xAA; 16]);
        let (v, consumed) = decode(&bytes).unwrap();
        assert_eq!(v, u);
        assert_eq!(consumed, encoded_len(&u));
    }

    #[test]
    fn truncated_buffer_rejected() {
        let u = uda(&[(0, 0.5), (1, 0.5)]);
        let bytes = encode_to_vec(&u);
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode(&bytes[..1]).is_err());
    }

    #[test]
    fn corrupt_order_rejected() {
        // Hand-build: two entries with non-increasing categories.
        let mut b = vec![2, 0];
        b.extend_from_slice(&5u32.to_le_bytes());
        b.extend_from_slice(&0.5f32.to_le_bytes());
        b.extend_from_slice(&5u32.to_le_bytes());
        b.extend_from_slice(&0.5f32.to_le_bytes());
        assert!(matches!(decode(&b), Err(Error::Corrupt(_))));
    }

    #[test]
    fn corrupt_probability_rejected() {
        let mut b = vec![1, 0];
        b.extend_from_slice(&0u32.to_le_bytes());
        b.extend_from_slice(&1.5f32.to_le_bytes());
        assert!(decode(&b).is_err());
        let mut b2 = vec![1, 0];
        b2.extend_from_slice(&0u32.to_le_bytes());
        b2.extend_from_slice(&0.0f32.to_le_bytes());
        assert!(decode(&b2).is_err());
    }

    #[test]
    fn excess_mass_rejected() {
        let mut b = vec![2, 0];
        b.extend_from_slice(&0u32.to_le_bytes());
        b.extend_from_slice(&0.8f32.to_le_bytes());
        b.extend_from_slice(&1u32.to_le_bytes());
        b.extend_from_slice(&0.8f32.to_le_bytes());
        assert!(decode(&b).is_err());
    }
}
