//! Distribution divergences (Section 2 of the paper).
//!
//! Three distances between probability vectors drive distributional
//! similarity queries (DSTQ) and — more importantly for indexing — the
//! clustering decisions inside the PDR-tree:
//!
//! * **L1** — Manhattan distance, a metric.
//! * **L2** — Euclidean distance, a metric.
//! * **KL** — Kullback–Leibler divergence. Not a metric (asymmetric, no
//!   triangle inequality) so it cannot prune search paths, but the paper
//!   finds it the best *clustering* measure (Figure 4).
//!
//! KL is computed with additive smoothing so that zero entries in `v` do not
//! produce infinities; the PDR-tree also applies it to MBR boundary vectors,
//! which are not normalized distributions — the functions here only assume
//! non-negative sparse vectors.

use crate::uda::Entry;

/// Which divergence to use — a runtime knob for the PDR-tree ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Divergence {
    /// Manhattan distance `Σ |u_i - v_i|`.
    L1,
    /// Euclidean distance `sqrt(Σ (u_i - v_i)^2)`.
    L2,
    /// Symmetrized, smoothed Kullback–Leibler divergence
    /// `KL(û‖v̂) + KL(v̂‖û)` over the mass-normalized shapes (see [`kl`]).
    /// The paper's preferred clustering measure.
    #[default]
    Kl,
}

impl Divergence {
    /// Evaluate this divergence on two sparse non-negative vectors.
    pub fn eval(self, u: &[Entry], v: &[Entry]) -> f64 {
        match self {
            Divergence::L1 => l1(u, v),
            Divergence::L2 => l2(u, v),
            Divergence::Kl => kl_symmetric(u, v),
        }
    }

    /// All divergences, for sweeps.
    pub const ALL: [Divergence; 3] = [Divergence::L1, Divergence::L2, Divergence::Kl];

    /// Short display name used in figure output.
    pub fn name(self) -> &'static str {
        match self {
            Divergence::L1 => "L1",
            Divergence::L2 => "L2",
            Divergence::Kl => "KL",
        }
    }

    /// Whether this divergence satisfies the metric axioms (and so may be
    /// used for pruning DSTQ search, not just clustering).
    pub fn is_metric(self) -> bool {
        !matches!(self, Divergence::Kl)
    }
}

/// Merge-walk two sorted sparse vectors, calling `f(u_i, v_i)` for every
/// category where either side is non-zero.
#[inline]
fn merge_fold<F: FnMut(f64, f64)>(u: &[Entry], v: &[Entry], mut f: F) {
    let mut i = 0;
    let mut j = 0;
    while i < u.len() && j < v.len() {
        match u[i].cat.cmp(&v[j].cat) {
            std::cmp::Ordering::Less => {
                f(u[i].prob as f64, 0.0);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                f(0.0, v[j].prob as f64);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                f(u[i].prob as f64, v[j].prob as f64);
                i += 1;
                j += 1;
            }
        }
    }
    for e in &u[i..] {
        f(e.prob as f64, 0.0);
    }
    for e in &v[j..] {
        f(0.0, e.prob as f64);
    }
}

/// Manhattan (L1) distance between sparse vectors.
pub fn l1(u: &[Entry], v: &[Entry]) -> f64 {
    let mut acc = 0.0;
    merge_fold(u, v, |a, b| acc += (a - b).abs());
    acc
}

/// Euclidean (L2) distance between sparse vectors.
pub fn l2(u: &[Entry], v: &[Entry]) -> f64 {
    let mut acc = 0.0;
    merge_fold(u, v, |a, b| acc += (a - b) * (a - b));
    acc.sqrt()
}

/// Smoothing constant for KL on sparse vectors: pretend every absent
/// category carries this much mass. Keeps `log` finite while preserving the
/// ratio-comparing behaviour the paper wants from KL.
pub const KL_SMOOTHING: f64 = 1e-3;

/// One-directional smoothed KL divergence `KL(u ‖ v)` between the
/// *shapes* of the two vectors: each side is normalized to unit mass
/// first. For probability distributions this is ordinary KL; for MBR
/// boundary vectors (mass > 1) it compares ratios without rewarding sheer
/// boundary size — an unnormalized boundary would otherwise attract every
/// insertion to the largest cluster.
pub fn kl(u: &[Entry], v: &[Entry]) -> f64 {
    let mu: f64 = u.iter().map(|e| e.prob as f64).sum();
    let mv: f64 = v.iter().map(|e| e.prob as f64).sum();
    if mu <= 0.0 || mv <= 0.0 {
        return 0.0;
    }
    let mut acc = 0.0;
    merge_fold(u, v, |a, b| {
        let a = a / mu;
        let b = b / mv;
        if a > 0.0 {
            acc += a * (a / (b + KL_SMOOTHING)).ln();
        }
    });
    acc.max(0.0)
}

/// Symmetrized smoothed KL: `KL(u‖v) + KL(v‖u)`. Symmetric, so usable as a
/// clustering affinity (still not a metric).
pub fn kl_symmetric(u: &[Entry], v: &[Entry]) -> f64 {
    kl(u, v) + kl(v, u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::CatId;
    use crate::uda::Uda;

    fn uda(pairs: &[(u32, f32)]) -> Uda {
        Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
    }

    #[test]
    fn l1_of_disjoint_unit_masses_is_two() {
        let u = uda(&[(0, 1.0)]);
        let v = uda(&[(1, 1.0)]);
        assert!((l1(u.entries(), v.entries()) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn l2_matches_hand_computation() {
        let u = uda(&[(0, 0.6), (1, 0.4)]);
        let v = uda(&[(0, 0.4), (1, 0.6)]);
        // sqrt(0.2^2 + 0.2^2)
        assert!((l2(u.entries(), v.entries()) - (0.08f64).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        let u = uda(&[(0, 0.5), (3, 0.5)]);
        assert_eq!(l1(u.entries(), u.entries()), 0.0);
        assert_eq!(l2(u.entries(), u.entries()), 0.0);
        assert!(kl(u.entries(), u.entries()).abs() < 1e-4);
    }

    #[test]
    fn kl_is_asymmetric_but_symmetrized_is_symmetric() {
        let u = uda(&[(0, 0.9), (1, 0.1)]);
        let v = uda(&[(0, 0.5), (1, 0.5)]);
        let (uv, vu) = (kl(u.entries(), v.entries()), kl(v.entries(), u.entries()));
        assert!(
            (uv - vu).abs() > 1e-3,
            "KL should be asymmetric: {uv} vs {vu}"
        );
        let s1 = kl_symmetric(u.entries(), v.entries());
        let s2 = kl_symmetric(v.entries(), u.entries());
        assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn kl_finite_on_disjoint_supports() {
        let u = uda(&[(0, 1.0)]);
        let v = uda(&[(1, 1.0)]);
        let d = kl(u.entries(), v.entries());
        assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    fn divergence_enum_dispatch() {
        let u = uda(&[(0, 0.7), (1, 0.3)]);
        let v = uda(&[(0, 0.3), (1, 0.7)]);
        assert_eq!(
            Divergence::L1.eval(u.entries(), v.entries()),
            l1(u.entries(), v.entries())
        );
        assert_eq!(
            Divergence::L2.eval(u.entries(), v.entries()),
            l2(u.entries(), v.entries())
        );
        assert_eq!(
            Divergence::Kl.eval(u.entries(), v.entries()),
            kl_symmetric(u.entries(), v.entries())
        );
        assert!(Divergence::L1.is_metric());
        assert!(Divergence::L2.is_metric());
        assert!(!Divergence::Kl.is_metric());
    }

    #[test]
    fn l1_l2_triangle_inequality_spot_check() {
        let a = uda(&[(0, 0.5), (1, 0.5)]);
        let b = uda(&[(0, 0.2), (2, 0.8)]);
        let c = uda(&[(1, 0.4), (2, 0.6)]);
        for d in [Divergence::L1, Divergence::L2] {
            let ab = d.eval(a.entries(), b.entries());
            let bc = d.eval(b.entries(), c.entries());
            let ac = d.eval(a.entries(), c.entries());
            assert!(ac <= ab + bc + 1e-9, "{d:?} violated triangle inequality");
        }
    }
}
