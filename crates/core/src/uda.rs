//! Uncertain discrete attributes (UDAs).
//!
//! A [`Uda`] is a sparse probability vector over a categorical domain: the
//! pairs-set representation `{(d, p) | Pr(u = d) = p ∧ p ≠ 0}` from the
//! paper (Section 2). Entries are stored sorted by category id, which makes
//! the inner-product and divergence computations linear merges.
//!
//! Following the paper, the total mass may be *less* than one (missing
//! values); it may never exceed one.

use std::fmt;

use crate::domain::CatId;
use crate::error::{Error, Result};
use crate::Prob;

/// Tolerance for "sums to at most 1" checks, absorbing f32 rounding.
pub const MASS_EPSILON: f64 = 1e-4;

/// A single `(category, probability)` entry of a UDA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// The category.
    pub cat: CatId,
    /// `Pr(u = cat)`, in `(0, 1]`.
    pub prob: Prob,
}

/// An uncertain discrete attribute: a sparse distribution over categories.
///
/// Invariants (enforced by [`UdaBuilder`] and the decoders):
/// * entries are sorted by strictly increasing category id;
/// * every probability is finite and in `(0, 1]`;
/// * the probabilities sum to at most `1 + MASS_EPSILON`.
///
/// ```
/// use uncat_core::{CatId, Uda};
///
/// // "Problem = {Brake: 0.5, Tires: 0.5}" from the paper's Table 1.
/// let problem = Uda::from_pairs([(CatId(0), 0.5), (CatId(1), 0.5)])?;
/// assert_eq!(problem.prob_of(CatId(0)), 0.5);
/// assert_eq!(problem.prob_of(CatId(7)), 0.0);
/// assert!((problem.mass() - 1.0).abs() < 1e-6);
///
/// // More mass than 1 is rejected.
/// assert!(Uda::from_pairs([(CatId(0), 0.8), (CatId(1), 0.8)]).is_err());
/// # Ok::<(), uncat_core::Error>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct Uda {
    entries: Box<[Entry]>,
}

impl Uda {
    /// Build a UDA from pairs, validating all invariants.
    ///
    /// Pairs may arrive in any order; zero-probability pairs are dropped.
    pub fn from_pairs<I>(pairs: I) -> Result<Uda>
    where
        I: IntoIterator<Item = (CatId, Prob)>,
    {
        let mut b = UdaBuilder::new();
        for (cat, prob) in pairs {
            b.push(cat, prob)?;
        }
        b.finish()
    }

    /// A certain value: all mass on a single category.
    pub fn certain(cat: CatId) -> Uda {
        Uda {
            entries: vec![Entry { cat, prob: 1.0 }].into_boxed_slice(),
        }
    }

    /// Construct from entries already known to satisfy the invariants.
    ///
    /// Used by the page decoders on trusted bytes; debug builds re-check.
    pub(crate) fn from_sorted_unchecked(entries: Vec<Entry>) -> Uda {
        debug_assert!(entries.windows(2).all(|w| w[0].cat < w[1].cat));
        debug_assert!(entries.iter().all(|e| e.prob > 0.0 && e.prob <= 1.0));
        Uda {
            entries: entries.into_boxed_slice(),
        }
    }

    /// The entries, sorted by category id.
    #[inline]
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of non-zero categories.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the UDA has no entries. Builders refuse to produce this, but
    /// intermediate code may want the check.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `Pr(u = cat)`; zero when the category carries no mass.
    pub fn prob_of(&self, cat: CatId) -> Prob {
        match self.entries.binary_search_by_key(&cat, |e| e.cat) {
            Ok(i) => self.entries[i].prob,
            Err(_) => 0.0,
        }
    }

    /// Total probability mass (≤ 1; < 1 indicates missing values).
    pub fn mass(&self) -> f64 {
        self.entries.iter().map(|e| e.prob as f64).sum()
    }

    /// The entry with the highest probability (`None` only for empty UDAs).
    pub fn mode(&self) -> Option<Entry> {
        self.entries
            .iter()
            .copied()
            .max_by(|a, b| a.prob.partial_cmp(&b.prob).expect("probs are finite"))
    }

    /// The highest probability in the distribution, 0.0 if empty.
    pub fn max_prob(&self) -> Prob {
        self.mode().map_or(0.0, |e| e.prob)
    }

    /// Iterate `(CatId, Prob)` pairs in category order.
    pub fn iter(&self) -> impl Iterator<Item = (CatId, Prob)> + '_ {
        self.entries.iter().map(|e| (e.cat, e.prob))
    }

    /// Largest category id present (drives minimum domain cardinality).
    pub fn max_cat(&self) -> Option<CatId> {
        self.entries.last().map(|e| e.cat)
    }

    /// Shannon entropy of the distribution, in bits. Zero for a certain
    /// value; `log2(n)` for a uniform spread over `n` categories. The
    /// quantitative form of the paper's "CRM1 exhibits less uncertainty
    /// than CRM2".
    pub fn entropy(&self) -> f64 {
        -self
            .entries
            .iter()
            .map(|e| {
                let p = e.prob as f64;
                p * p.log2()
            })
            .sum::<f64>()
    }

    /// Entropy normalized by the support size: in `[0, 1]`, independent of
    /// how many categories carry mass.
    pub fn normalized_entropy(&self) -> f64 {
        if self.entries.len() <= 1 {
            return 0.0;
        }
        self.entropy() / (self.entries.len() as f64).log2()
    }
}

impl fmt::Debug for Uda {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({}, {:.3})", e.cat, e.prob)?;
        }
        write!(f, "}}")
    }
}

/// Incremental builder for [`Uda`] values with validation.
#[derive(Default)]
pub struct UdaBuilder {
    entries: Vec<Entry>,
}

impl UdaBuilder {
    /// New empty builder.
    pub fn new() -> UdaBuilder {
        UdaBuilder {
            entries: Vec::new(),
        }
    }

    /// New builder with capacity for `n` entries.
    pub fn with_capacity(n: usize) -> UdaBuilder {
        UdaBuilder {
            entries: Vec::with_capacity(n),
        }
    }

    /// Add a `(category, probability)` pair.
    ///
    /// Zero probabilities are accepted and dropped (sparse representation);
    /// negative, non-finite, or > 1 probabilities are rejected here, and
    /// duplicate categories / excess mass are rejected by [`finish`].
    ///
    /// [`finish`]: UdaBuilder::finish
    pub fn push(&mut self, cat: CatId, prob: Prob) -> Result<&mut Self> {
        let p = prob as f64;
        if !p.is_finite() || !(0.0..=1.0 + MASS_EPSILON).contains(&p) {
            return Err(Error::InvalidProbability { value: p });
        }
        if prob > 0.0 {
            self.entries.push(Entry {
                cat,
                prob: prob.min(1.0),
            });
        }
        Ok(self)
    }

    /// Number of (non-zero) entries pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Validate and produce the UDA.
    pub fn finish(mut self) -> Result<Uda> {
        if self.entries.is_empty() {
            return Err(Error::EmptyUda);
        }
        self.entries.sort_by_key(|e| e.cat);
        for w in self.entries.windows(2) {
            if w[0].cat == w[1].cat {
                return Err(Error::DuplicateCategory { cat: w[0].cat.0 });
            }
        }
        let total: f64 = self.entries.iter().map(|e| e.prob as f64).sum();
        if total > 1.0 + MASS_EPSILON {
            return Err(Error::MassExceedsOne { total });
        }
        Ok(Uda {
            entries: self.entries.into_boxed_slice(),
        })
    }

    /// Validate, then normalize the mass to exactly 1 and produce the UDA.
    ///
    /// Useful for generator output where rounding leaves the sum slightly
    /// off. Errors if the builder is empty or holds invalid entries.
    pub fn finish_normalized(mut self) -> Result<Uda> {
        if self.entries.is_empty() {
            return Err(Error::EmptyUda);
        }
        self.entries.sort_by_key(|e| e.cat);
        for w in self.entries.windows(2) {
            if w[0].cat == w[1].cat {
                return Err(Error::DuplicateCategory { cat: w[0].cat.0 });
            }
        }
        let total: f64 = self.entries.iter().map(|e| e.prob as f64).sum();
        debug_assert!(total > 0.0);
        for e in &mut self.entries {
            e.prob = ((e.prob as f64) / total) as Prob;
        }
        Ok(Uda {
            entries: self.entries.into_boxed_slice(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CatId {
        CatId(i)
    }

    #[test]
    fn from_pairs_sorts_and_validates() {
        let u = Uda::from_pairs([(c(3), 0.5), (c(1), 0.25), (c(2), 0.25)]).unwrap();
        let cats: Vec<u32> = u.iter().map(|(cat, _)| cat.0).collect();
        assert_eq!(cats, vec![1, 2, 3]);
        assert!((u.mass() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_probabilities_are_dropped() {
        let u = Uda::from_pairs([(c(0), 0.0), (c(1), 1.0)]).unwrap();
        assert_eq!(u.len(), 1);
        assert_eq!(u.prob_of(c(0)), 0.0);
        assert_eq!(u.prob_of(c(1)), 1.0);
    }

    #[test]
    fn mass_may_be_less_than_one() {
        let u = Uda::from_pairs([(c(0), 0.3), (c(4), 0.2)]).unwrap();
        assert!((u.mass() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn mass_above_one_rejected() {
        let err = Uda::from_pairs([(c(0), 0.7), (c(1), 0.7)]).unwrap_err();
        assert!(matches!(err, Error::MassExceedsOne { .. }));
    }

    #[test]
    fn duplicate_category_rejected() {
        let err = Uda::from_pairs([(c(0), 0.2), (c(0), 0.3)]).unwrap_err();
        assert!(matches!(err, Error::DuplicateCategory { cat: 0 }));
    }

    #[test]
    fn invalid_probability_rejected() {
        assert!(Uda::from_pairs([(c(0), -0.1)]).is_err());
        assert!(Uda::from_pairs([(c(0), f32::NAN)]).is_err());
        assert!(Uda::from_pairs([(c(0), 1.5)]).is_err());
    }

    #[test]
    fn empty_uda_rejected() {
        assert!(matches!(Uda::from_pairs([]), Err(Error::EmptyUda)));
        assert!(matches!(
            Uda::from_pairs([(c(0), 0.0)]),
            Err(Error::EmptyUda)
        ));
    }

    #[test]
    fn certain_value() {
        let u = Uda::certain(c(7));
        assert_eq!(u.prob_of(c(7)), 1.0);
        assert_eq!(u.mode().unwrap().cat, c(7));
        assert_eq!(u.max_prob(), 1.0);
    }

    #[test]
    fn mode_picks_heaviest() {
        let u = Uda::from_pairs([(c(0), 0.2), (c(5), 0.5), (c(9), 0.3)]).unwrap();
        assert_eq!(u.mode().unwrap().cat, c(5));
    }

    #[test]
    fn entropy_endpoints() {
        let certain = Uda::certain(c(3));
        assert_eq!(certain.entropy(), 0.0);
        assert_eq!(certain.normalized_entropy(), 0.0);

        let uniform4 = Uda::from_pairs((0..4).map(|i| (c(i), 0.25f32))).unwrap();
        assert!((uniform4.entropy() - 2.0).abs() < 1e-6, "log2(4) = 2 bits");
        assert!((uniform4.normalized_entropy() - 1.0).abs() < 1e-6);

        let skewed = Uda::from_pairs([(c(0), 0.9f32), (c(1), 0.1)]).unwrap();
        assert!(skewed.entropy() > 0.0 && skewed.entropy() < 1.0);
        assert!(skewed.normalized_entropy() < 1.0);
    }

    #[test]
    fn normalized_finish_scales_to_unit_mass() {
        let mut b = UdaBuilder::new();
        b.push(c(0), 0.2).unwrap();
        b.push(c(1), 0.2).unwrap();
        let u = b.finish_normalized().unwrap();
        assert!((u.mass() - 1.0).abs() < 1e-6);
        assert!((u.prob_of(c(0)) - 0.5).abs() < 1e-6);
    }
}
