//! Probabilistic operators for *totally ordered* categorical domains.
//!
//! The paper (§2, last paragraph): "for the special case of totally
//! ordered categorical domains, e.g. `D = {1, …, N}`, additional
//! inequality probabilistic relations and operators can be defined between
//! two UDAs. For example, we can define `Pr(u > v)`, and
//! `Pr(|u − v| ≤ c)`. The notion of probabilistic equality can be
//! slightly relaxed to allow a window within which the values are
//! considered equal."
//!
//! Categories are ordered by their [`CatId`]. Under independence:
//!
//! ```text
//! Pr(u < v)        = Σ_{i<j} u.p_i · v.p_j
//! Pr(|u − v| ≤ c)  = Σ_{|i−j|≤c} u.p_i · v.p_j  =  ⟨boxᶜ(u), v⟩
//! ```
//!
//! where `boxᶜ(u)` is the box-filtered (window-smoothed) vector
//! `boxᶜ(u)_j = Σ_{|i−j|≤c} u.p_i`. The smoothed vector is how windowed
//! equality plugs into the equality indexes: it is a plain inner-product
//! query, just with mass possibly exceeding one.

use crate::domain::CatId;
use crate::uda::Entry;
use crate::uda::Uda;

/// `Pr(u < v)` for UDAs over a totally ordered domain.
pub fn pr_less(u: &Uda, v: &Uda) -> f64 {
    // Walk v in category order, accumulating u's mass strictly below.
    let ue = u.entries();
    let mut i = 0;
    let mut below = 0.0f64;
    let mut acc = 0.0f64;
    for e in v.entries() {
        while i < ue.len() && ue[i].cat < e.cat {
            below += ue[i].prob as f64;
            i += 1;
        }
        acc += e.prob as f64 * below;
    }
    acc
}

/// `Pr(u > v)`.
pub fn pr_greater(u: &Uda, v: &Uda) -> f64 {
    pr_less(v, u)
}

/// `Pr(u ≤ v) = Pr(u < v) + Pr(u = v)`.
pub fn pr_less_eq(u: &Uda, v: &Uda) -> f64 {
    pr_less(u, v) + crate::equality::eq_prob(u, v)
}

/// `Pr(|u − v| ≤ c)`: windowed equality between two UDAs.
pub fn pr_within(u: &Uda, v: &Uda, c: u32) -> f64 {
    let ue = u.entries();
    let mut lo = 0usize; // first u entry with cat ≥ e.cat − c
    let mut hi = 0usize; // first u entry with cat > e.cat + c
    let mut window = 0.0f64;
    let mut acc = 0.0f64;
    for e in v.entries() {
        let low_cat = e.cat.0.saturating_sub(c);
        let high_cat = e.cat.0.saturating_add(c);
        while hi < ue.len() && ue[hi].cat.0 <= high_cat {
            window += ue[hi].prob as f64;
            hi += 1;
        }
        while lo < hi && ue[lo].cat.0 < low_cat {
            window -= ue[lo].prob as f64;
            lo += 1;
        }
        acc += e.prob as f64 * window;
    }
    acc
}

/// `Pr(|u − d| ≤ c)` against a certain value `d`.
pub fn pr_within_value(u: &Uda, d: CatId, c: u32) -> f64 {
    let low = d.0.saturating_sub(c);
    let high = d.0.saturating_add(c);
    u.iter()
        .filter(|(cat, _)| (low..=high).contains(&cat.0))
        .map(|(_, p)| p as f64)
        .sum()
}

/// The box-filtered vector `boxᶜ(u)` with `boxᶜ(u)_j = Σ_{|i−j|≤c} u.p_i`,
/// clamped to the domain `[0, n)`.
///
/// `Pr(|u − v| ≤ c) = Σ_j boxᶜ(u)_j · v.p_j`, so a windowed-equality query
/// is an ordinary inner-product query with the smoothed vector. Note the
/// result is *not* a distribution (components may exceed individual
/// probabilities and total mass may exceed 1); consumers treat it as a raw
/// query vector.
pub fn window_smooth(u: &Uda, c: u32, domain_size: u32) -> Vec<Entry> {
    let mut out: Vec<Entry> = Vec::new();
    for (cat, p) in u.iter() {
        let low = cat.0.saturating_sub(c);
        let high = cat.0.saturating_add(c).min(domain_size.saturating_sub(1));
        for j in low..=high {
            match out.binary_search_by_key(&CatId(j), |e| e.cat) {
                Ok(k) => out[k].prob += p,
                Err(k) => out.insert(
                    k,
                    Entry {
                        cat: CatId(j),
                        prob: p,
                    },
                ),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equality::eq_prob;

    fn uda(pairs: &[(u32, f32)]) -> Uda {
        Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
    }

    #[test]
    fn less_greater_equal_partition_unit_mass() {
        let u = uda(&[(0, 0.3), (2, 0.4), (5, 0.3)]);
        let v = uda(&[(1, 0.5), (2, 0.2), (9, 0.3)]);
        let total = pr_less(&u, &v) + pr_greater(&u, &v) + eq_prob(&u, &v);
        assert!(
            (total - 1.0).abs() < 1e-6,
            "trichotomy must partition: {total}"
        );
    }

    #[test]
    fn pr_less_hand_computed() {
        let u = uda(&[(0, 0.5), (2, 0.5)]);
        let v = uda(&[(1, 0.4), (3, 0.6)]);
        // u<v: (0<1):0.5·0.4 + (0<3):0.5·0.6 + (2<3):0.5·0.6 = 0.2+0.3+0.3
        assert!((pr_less(&u, &v) - 0.8).abs() < 1e-6);
        assert!((pr_greater(&u, &v) - 0.2).abs() < 1e-6);
        assert_eq!(eq_prob(&u, &v), 0.0);
        assert!((pr_less_eq(&u, &v) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn window_zero_is_equality() {
        let u = uda(&[(0, 0.6), (3, 0.4)]);
        let v = uda(&[(0, 0.2), (3, 0.8)]);
        assert!((pr_within(&u, &v, 0) - eq_prob(&u, &v)).abs() < 1e-9);
    }

    #[test]
    fn window_widens_monotonically_to_one() {
        let u = uda(&[(0, 0.5), (4, 0.5)]);
        let v = uda(&[(2, 1.0)]);
        let p0 = pr_within(&u, &v, 0);
        let p1 = pr_within(&u, &v, 1);
        let p2 = pr_within(&u, &v, 2);
        assert_eq!(p0, 0.0);
        assert_eq!(p1, 0.0);
        assert!(
            (p2 - 1.0).abs() < 1e-6,
            "both mass points are within |Δ| ≤ 2 of category 2"
        );
        assert!(p0 <= p1 && p1 <= p2);
    }

    #[test]
    fn pr_within_value_sums_window_mass() {
        let u = uda(&[(0, 0.25), (1, 0.25), (5, 0.5)]);
        assert!((pr_within_value(&u, CatId(1), 1) - 0.5).abs() < 1e-6);
        assert!((pr_within_value(&u, CatId(4), 1) - 0.5).abs() < 1e-6);
        assert!((pr_within_value(&u, CatId(3), 0) - 0.0).abs() < 1e-6);
        assert!((pr_within_value(&u, CatId(2), 10) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn window_smooth_reproduces_pr_within() {
        let u = uda(&[(1, 0.3), (4, 0.7)]);
        let v = uda(&[(0, 0.2), (2, 0.3), (5, 0.5)]);
        for c in 0..4u32 {
            let smooth = window_smooth(&u, c, 10);
            let ip: f64 = v
                .iter()
                .map(|(cat, p)| {
                    let s = smooth
                        .binary_search_by_key(&cat, |e| e.cat)
                        .map(|k| smooth[k].prob as f64)
                        .unwrap_or(0.0);
                    s * p as f64
                })
                .sum();
            let direct = pr_within(&u, &v, c);
            assert!((ip - direct).abs() < 1e-6, "c={c}: {ip} vs {direct}");
        }
    }

    #[test]
    fn window_smooth_clamps_to_domain() {
        let u = uda(&[(0, 1.0)]);
        let s = window_smooth(&u, 3, 2);
        assert_eq!(s.len(), 2, "window cannot leave the domain");
        assert!(s.iter().all(|e| e.cat.0 < 2));
    }

    #[test]
    fn identical_certain_values_compare_equal() {
        let u = uda(&[(7, 1.0)]);
        assert_eq!(pr_less(&u, &u), 0.0);
        assert_eq!(pr_greater(&u, &u), 0.0);
        assert!((eq_prob(&u, &u) - 1.0).abs() < 1e-9);
    }
}
