//! Query definitions shared by every index implementation.
//!
//! The paper defines (Definitions 3–6):
//!
//! * **PEQ** — probabilistic equality query: all tuples with
//!   `Pr(q = t.a) > 0`, together with the probability.
//! * **PETQ** — equality *threshold* query `(q, τ)`: tuples with
//!   `Pr(q = t.a) ≥ τ`.
//! * **PEQ-top-k** — the `k` tuples with the highest equality probability.
//! * **DSTQ** — distributional similarity threshold query `(q, τ_d, F)`:
//!   tuples whose divergence `F(q, t.a)` is at most `τ_d`.
//! * **DSQ-top-k** — the `k` distributionally closest tuples.
//!
//! Join forms (PETJ etc.) are built on these in `uncat-query`.

use crate::distance::Divergence;
use crate::uda::Uda;
use crate::TupleId;

/// A probabilistic equality threshold query (PETQ): `Pr(q = t) ≥ tau`.
#[derive(Debug, Clone)]
pub struct EqQuery {
    /// The query distribution.
    pub q: Uda,
    /// Probability threshold `τ ∈ (0, 1]`.
    pub tau: f64,
}

impl EqQuery {
    /// Build a PETQ.
    pub fn new(q: Uda, tau: f64) -> EqQuery {
        EqQuery { q, tau }
    }
}

/// A top-k equality query (PEQ-top-k).
#[derive(Debug, Clone)]
pub struct TopKQuery {
    /// The query distribution.
    pub q: Uda,
    /// How many of the most probable matches to return.
    pub k: usize,
}

impl TopKQuery {
    /// Build a top-k query.
    pub fn new(q: Uda, k: usize) -> TopKQuery {
        TopKQuery { q, k }
    }
}

/// A distributional similarity threshold query (DSTQ): `F(q, t) ≤ tau_d`.
#[derive(Debug, Clone)]
pub struct DstQuery {
    /// The query distribution.
    pub q: Uda,
    /// Divergence threshold.
    pub tau_d: f64,
    /// Which divergence `F` to use. Only metric divergences (L1/L2) admit
    /// index pruning; KL falls back to verification against candidates.
    pub divergence: Divergence,
}

impl DstQuery {
    /// Build a DSTQ.
    pub fn new(q: Uda, tau_d: f64, divergence: Divergence) -> DstQuery {
        DstQuery {
            q,
            tau_d,
            divergence,
        }
    }
}

/// A distributional-similarity top-k query (DSQ-top-k): the `k` tuples
/// with the smallest divergence from `q`.
#[derive(Debug, Clone)]
pub struct DsTopKQuery {
    /// The query distribution.
    pub q: Uda,
    /// How many closest tuples to return.
    pub k: usize,
    /// Which divergence to minimize.
    pub divergence: Divergence,
}

impl DsTopKQuery {
    /// Build a DSQ-top-k query.
    pub fn new(q: Uda, k: usize, divergence: Divergence) -> DsTopKQuery {
        DsTopKQuery { q, k, divergence }
    }
}

/// Discriminates query families where a single code path handles several.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Threshold equality query.
    Threshold,
    /// Top-k equality query.
    TopK,
    /// Distributional similarity query.
    Similarity,
}

/// One qualifying tuple: id plus its score (equality probability for
/// PETQ/top-k, divergence for DSTQ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// The qualifying tuple.
    pub tid: TupleId,
    /// `Pr(q = t)` for equality queries; `F(q, t)` for similarity queries.
    pub score: f64,
}

impl Match {
    /// Construct a match.
    pub fn new(tid: TupleId, score: f64) -> Match {
        Match { tid, score }
    }
}

/// Canonical result ordering for equality queries: descending probability,
/// ties broken by ascending tuple id so comparisons are deterministic.
pub fn sort_matches_desc(matches: &mut [Match]) {
    matches.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.tid.cmp(&b.tid))
    });
}

/// Canonical result ordering for similarity queries: ascending divergence,
/// ties broken by ascending tuple id.
pub fn sort_matches_asc(matches: &mut [Match]) {
    matches.sort_by(|a, b| {
        a.score
            .partial_cmp(&b.score)
            .expect("scores are finite")
            .then_with(|| a.tid.cmp(&b.tid))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::CatId;

    #[test]
    fn sort_desc_breaks_ties_by_tid() {
        let mut m = vec![Match::new(5, 0.3), Match::new(2, 0.3), Match::new(1, 0.9)];
        sort_matches_desc(&mut m);
        assert_eq!(m.iter().map(|x| x.tid).collect::<Vec<_>>(), vec![1, 2, 5]);
    }

    #[test]
    fn sort_asc_orders_by_distance() {
        let mut m = vec![Match::new(5, 0.3), Match::new(2, 0.1), Match::new(1, 0.9)];
        sort_matches_asc(&mut m);
        assert_eq!(m.iter().map(|x| x.tid).collect::<Vec<_>>(), vec![2, 5, 1]);
    }

    #[test]
    fn query_constructors() {
        let q = Uda::certain(CatId(0));
        let petq = EqQuery::new(q.clone(), 0.5);
        assert_eq!(petq.tau, 0.5);
        let topk = TopKQuery::new(q.clone(), 10);
        assert_eq!(topk.k, 10);
        let dstq = DstQuery::new(q, 0.2, Divergence::L1);
        assert_eq!(dstq.divergence, Divergence::L1);
    }
}
