//! Error type shared by the core data model.

use std::fmt;

/// Errors produced while constructing or decoding uncertain attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A probability was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// The probabilities of a UDA summed to more than one (beyond tolerance).
    MassExceedsOne {
        /// The total probability mass observed.
        total: f64,
    },
    /// A category id was out of range for the domain.
    UnknownCategory {
        /// The offending category id.
        cat: u32,
        /// The domain cardinality.
        domain_size: u32,
    },
    /// The same category appeared twice while building a UDA.
    DuplicateCategory {
        /// The duplicated category id.
        cat: u32,
    },
    /// A UDA with no positive-probability category.
    EmptyUda,
    /// A byte buffer could not be decoded as a UDA.
    Corrupt(&'static str),
    /// A category label was not present in the domain.
    UnknownLabel(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidProbability { value } => {
                write!(
                    f,
                    "invalid probability {value}: must be finite and in [0, 1]"
                )
            }
            Error::MassExceedsOne { total } => {
                write!(f, "probability mass {total} exceeds 1")
            }
            Error::UnknownCategory { cat, domain_size } => {
                write!(
                    f,
                    "category id {cat} out of range for domain of size {domain_size}"
                )
            }
            Error::DuplicateCategory { cat } => {
                write!(f, "category id {cat} listed more than once")
            }
            Error::EmptyUda => write!(f, "a UDA must assign positive probability somewhere"),
            Error::Corrupt(what) => write!(f, "corrupt UDA encoding: {what}"),
            Error::UnknownLabel(l) => write!(f, "label {l:?} is not in the domain"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
