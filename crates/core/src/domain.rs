//! Categorical domains.
//!
//! A [`Domain`] is the finite set `D = {d1, ..., dN}` a UDA distributes
//! probability over. Categories are interned: the domain maps human-readable
//! labels to dense [`CatId`]s, and indexes only ever deal in ids.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};

/// A category identifier: a dense index into a [`Domain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CatId(pub u32);

impl CatId {
    /// The id as a `usize`, for indexing dense vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u32> for CatId {
    fn from(v: u32) -> Self {
        CatId(v)
    }
}

/// An interned categorical domain.
///
/// Domains are cheap to clone (`Arc` internally) and immutable once built;
/// every UDA in a relation shares one domain. An *anonymous* domain
/// (`Domain::anonymous(n)`) has no labels and is used by synthetic data
/// generators where only the cardinality matters.
#[derive(Clone)]
pub struct Domain {
    inner: Arc<DomainInner>,
}

struct DomainInner {
    labels: Vec<String>,
    by_label: HashMap<String, CatId>,
    /// Cardinality; equals `labels.len()` for labeled domains but may exceed
    /// it for anonymous domains.
    size: u32,
}

impl Domain {
    /// Build a labeled domain from a list of distinct category labels.
    ///
    /// Labels are assigned ids in order: the first label becomes `CatId(0)`.
    pub fn from_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        let by_label = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.clone(), CatId(i as u32)))
            .collect();
        let size = labels.len() as u32;
        Domain {
            inner: Arc::new(DomainInner {
                labels,
                by_label,
                size,
            }),
        }
    }

    /// Build an anonymous domain of the given cardinality.
    pub fn anonymous(size: u32) -> Self {
        Domain {
            inner: Arc::new(DomainInner {
                labels: Vec::new(),
                by_label: HashMap::new(),
                size,
            }),
        }
    }

    /// Domain cardinality `N = |D|`.
    #[inline]
    pub fn size(&self) -> u32 {
        self.inner.size
    }

    /// Whether `cat` is a valid id for this domain.
    #[inline]
    pub fn contains(&self, cat: CatId) -> bool {
        cat.0 < self.inner.size
    }

    /// Resolve a label to its id.
    pub fn id_of(&self, label: &str) -> Result<CatId> {
        self.inner
            .by_label
            .get(label)
            .copied()
            .ok_or_else(|| Error::UnknownLabel(label.to_owned()))
    }

    /// The label of a category, if this domain is labeled.
    pub fn label_of(&self, cat: CatId) -> Option<&str> {
        self.inner.labels.get(cat.index()).map(String::as_str)
    }

    /// Iterate over all category ids of the domain.
    pub fn ids(&self) -> impl Iterator<Item = CatId> {
        (0..self.inner.size).map(CatId)
    }

    /// Whether two handles refer to the same underlying domain.
    pub fn same_as(&self, other: &Domain) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The labels in id order (empty for anonymous domains).
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.inner.labels.iter().map(String::as_str)
    }

    /// Whether the domain carries labels.
    pub fn is_labeled(&self) -> bool {
        !self.inner.labels.is_empty()
    }
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inner.labels.is_empty() {
            write!(f, "Domain(anonymous, N={})", self.inner.size)
        } else {
            write!(
                f,
                "Domain({:?}...)",
                &self.inner.labels[..self.inner.labels.len().min(4)]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_domain_roundtrip() {
        let d = Domain::from_labels(["Brake", "Tires", "Trans"]);
        assert_eq!(d.size(), 3);
        assert_eq!(d.id_of("Tires").unwrap(), CatId(1));
        assert_eq!(d.label_of(CatId(2)), Some("Trans"));
        assert!(d.contains(CatId(2)));
        assert!(!d.contains(CatId(3)));
    }

    #[test]
    fn unknown_label_errors() {
        let d = Domain::from_labels(["a"]);
        assert!(matches!(d.id_of("b"), Err(Error::UnknownLabel(_))));
    }

    #[test]
    fn anonymous_domain_has_ids_but_no_labels() {
        let d = Domain::anonymous(10);
        assert_eq!(d.size(), 10);
        assert!(d.contains(CatId(9)));
        assert!(!d.contains(CatId(10)));
        assert_eq!(d.label_of(CatId(0)), None);
        assert_eq!(d.ids().count(), 10);
    }

    #[test]
    fn clones_share_identity() {
        let d = Domain::anonymous(5);
        let e = d.clone();
        assert!(d.same_as(&e));
        assert!(!d.same_as(&Domain::anonymous(5)));
    }
}
