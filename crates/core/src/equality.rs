//! Probabilistic equality semantics (Definitions 1–2 of the paper).
//!
//! For UDAs `u`, `v` over the same domain, under the independence
//! assumption the probability that they are equal is the inner product of
//! their probability vectors:
//!
//! ```text
//! Pr(u = v) = Σ_i  u.p_i · v.p_i
//! ```
//!
//! Both operands are sparse and sorted by category, so the product is a
//! linear merge over the shorter supports.

use crate::domain::CatId;
use crate::uda::Uda;
use crate::Prob;

/// `Pr(u = d)` for a plain category value `d` (Definition 1).
#[inline]
pub fn eq_prob_value(u: &Uda, d: CatId) -> f64 {
    u.prob_of(d) as f64
}

/// `Pr(u = v)` for two UDAs (Definition 2): the inner product of the two
/// sparse probability vectors, accumulated in `f64`.
///
/// ```
/// use uncat_core::{equality::eq_prob, CatId, Uda};
///
/// // The paper's §2 example: distributional similarity is not equality.
/// let u = Uda::from_pairs([(CatId(0), 0.6), (CatId(1), 0.4)])?;
/// let v = Uda::from_pairs([(CatId(0), 0.4), (CatId(1), 0.6)])?;
/// assert!((eq_prob(&u, &v) - 0.48).abs() < 1e-6);
/// # Ok::<(), uncat_core::Error>(())
/// ```
pub fn eq_prob(u: &Uda, v: &Uda) -> f64 {
    let (a, b) = (u.entries(), v.entries());
    let mut i = 0;
    let mut j = 0;
    let mut acc = 0.0f64;
    while i < a.len() && j < b.len() {
        match a[i].cat.cmp(&b[j].cat) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += a[i].prob as f64 * b[j].prob as f64;
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// Slack used by every threshold comparison so that index pruning and
/// scan baselines agree on tuples sitting exactly at `τ` despite f32→f64
/// rounding.
pub const THRESHOLD_EPS: f64 = 1e-9;

/// The canonical "qualifies for threshold `tau`" test used by every
/// implementation (Definition 4's `Pr(q = t.a) ≥ τ`).
#[inline]
pub fn meets_threshold(pr: f64, tau: f64) -> bool {
    pr >= tau - THRESHOLD_EPS
}

/// An upper bound on `Pr(q = t)` knowing only `t`'s largest probability.
///
/// `Pr(q = t) = Σ q.p_i t.p_i ≤ max_i(t.p_i) · Σ q.p_i ≤ max_i(t.p_i)`,
/// the bound behind the paper's *column pruning* strategy.
#[inline]
pub fn eq_upper_bound_from_max(t_max_prob: Prob) -> f64 {
    t_max_prob as f64
}

/// An upper bound on `Pr(q = t)` from the query alone: a tuple can only
/// reach probability `max_i q.p_i` (since `Σ t.p_i ≤ 1`). This is the bound
/// behind *row pruning*: lists whose query probability is ≤ τ can still
/// *contribute*, but a tuple whose every overlapping query item has
/// `q.p ≤ τ` cannot qualify on those items alone.
#[inline]
pub fn eq_upper_bound_from_query_max(q_max_prob: Prob) -> f64 {
    q_max_prob as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uda::Uda;

    fn uda(pairs: &[(u32, f32)]) -> Uda {
        Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
    }

    #[test]
    fn paper_example_distribution_vs_equality() {
        // Section 2: flat-vs-flat has lower equality probability than two
        // close-but-unequal concentrated distributions.
        let flat = uda(&[(0, 0.2), (1, 0.2), (2, 0.2), (3, 0.2), (4, 0.2)]);
        assert!((eq_prob(&flat, &flat) - 0.2).abs() < 1e-6);

        let u = uda(&[(0, 0.6), (1, 0.4)]);
        let v = uda(&[(0, 0.4), (1, 0.6)]);
        assert!((eq_prob(&u, &v) - 0.48).abs() < 1e-6);
    }

    #[test]
    fn disjoint_supports_never_equal() {
        let u = uda(&[(0, 1.0)]);
        let v = uda(&[(1, 1.0)]);
        assert_eq!(eq_prob(&u, &v), 0.0);
    }

    #[test]
    fn certain_equal_values() {
        let u = uda(&[(3, 1.0)]);
        assert!((eq_prob(&u, &u) - 1.0).abs() < 1e-9);
        assert!((eq_prob_value(&u, CatId(3)) - 1.0).abs() < 1e-9);
        assert_eq!(eq_prob_value(&u, CatId(2)), 0.0);
    }

    #[test]
    fn symmetry() {
        let u = uda(&[(0, 0.5), (2, 0.3), (7, 0.2)]);
        let v = uda(&[(2, 0.9), (7, 0.1)]);
        assert_eq!(eq_prob(&u, &v), eq_prob(&v, &u));
    }

    #[test]
    fn upper_bounds_hold() {
        let q = uda(&[(0, 0.5), (1, 0.5)]);
        let t = uda(&[(0, 0.3), (1, 0.3), (2, 0.4)]);
        let p = eq_prob(&q, &t);
        assert!(p <= eq_upper_bound_from_max(t.max_prob()) + 1e-9);
        assert!(p <= eq_upper_bound_from_query_max(q.max_prob()) + 1e-9);
    }
}
