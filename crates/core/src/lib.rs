//! Data model for *uncertain categorical data*.
//!
//! This crate implements the data model of Singh et al., *Indexing Uncertain
//! Categorical Data* (ICDE 2007): an **uncertain discrete attribute** (UDA)
//! is a probability distribution over a categorical domain
//! `D = {d1, ..., dN}`. A tuple's attribute value is not a single category
//! but a (typically sparse) probability vector.
//!
//! The crate provides:
//!
//! * [`Domain`] — an interned categorical domain with stable [`CatId`]s.
//! * [`Uda`] — a sparse probability vector over a domain, plus
//!   [`UdaBuilder`] for incremental construction and validation.
//! * Equality semantics ([`equality`]): `Pr(u = d)` and
//!   `Pr(u = v) = Σ u.p_i · v.p_i` under independence.
//! * Distribution divergences ([`distance`]): L1, L2, KL and the
//!   symmetrized variants used for clustering inside the PDR-tree.
//! * Query definitions ([`query`]): PEQ, PETQ, top-k, DSTQ and friends,
//!   shared by every index implementation.
//! * A compact binary codec ([`codec`]) used by the storage layer to put
//!   UDAs on 8 KB pages.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod distance;
pub mod domain;
pub mod equality;
pub mod error;
pub mod ordered;
pub mod query;
pub mod topk;
pub mod uda;

pub use distance::Divergence;
pub use domain::{CatId, Domain};
pub use error::{Error, Result};
pub use query::{DsTopKQuery, DstQuery, EqQuery, QueryKind, TopKQuery};
pub use uda::{Uda, UdaBuilder};

/// A tuple identifier. Tuples live in a heap file; the id is assigned by the
/// store and is stable for the lifetime of the tuple.
pub type TupleId = u64;

/// Probability type used on disk pages. Computation accumulates in `f64`.
pub type Prob = f32;
