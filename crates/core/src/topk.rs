//! A bounded top-k accumulator with a dynamically rising threshold.
//!
//! The paper executes top-k queries "essentially using threshold queries …
//! by dynamically adjusting the threshold τ to the k-th highest probability
//! in the current result set" (Section 2). [`TopKHeap`] packages that: it
//! keeps the best `k` matches seen so far and exposes the current effective
//! threshold for pruning.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::query::Match;
use crate::TupleId;

/// Min-heap entry ordered by (score asc, tid desc) so that `peek` is the
/// *weakest* retained match and ties evict the largest tid first,
/// mirroring the deterministic canonical ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry(Match);

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert score so the weakest floats up.
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .expect("scores are finite")
            .then_with(|| self.0.tid.cmp(&other.0.tid))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Accumulator for the `k` highest-scoring matches.
#[derive(Debug)]
pub struct TopKHeap {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
    floor: f64,
}

impl TopKHeap {
    /// New accumulator retaining at most `k` matches, pruning at `floor`:
    /// matches scoring below `floor` are never admitted (use `0.0`, or a
    /// PETQ threshold when combining top-k with a minimum probability).
    pub fn new(k: usize, floor: f64) -> TopKHeap {
        TopKHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            floor,
        }
    }

    /// Offer a match. Returns `true` if it was retained.
    pub fn offer(&mut self, tid: TupleId, score: f64) -> bool {
        if self.k == 0 || score < self.floor {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry(Match::new(tid, score)));
            return true;
        }
        let weakest = self.heap.peek().expect("non-empty").0;
        let better = score > weakest.score || (score == weakest.score && tid < weakest.tid);
        if better {
            self.heap.pop();
            self.heap.push(HeapEntry(Match::new(tid, score)));
        }
        better
    }

    /// The current effective threshold: any future match scoring *at or
    /// below* this cannot change the result set (once full, the k-th best
    /// score; before that, the floor).
    pub fn threshold(&self) -> f64 {
        if self.heap.len() < self.k {
            self.floor
        } else {
            self.heap.peek().map_or(self.floor, |e| e.0.score)
        }
    }

    /// Whether `k` matches have been accumulated.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Number of retained matches.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no match has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consume the heap, returning matches in canonical descending order.
    pub fn into_sorted(self) -> Vec<Match> {
        let mut v: Vec<Match> = self.heap.into_iter().map(|e| e.0).collect();
        crate::query::sort_matches_desc(&mut v);
        v
    }
}

/// Max-heap entry ordered by (score desc, tid desc): `peek` is the
/// *largest* retained distance, ties evict the largest tid first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BottomEntry(Match);

impl Eq for BottomEntry {}

impl Ord for BottomEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .score
            .partial_cmp(&other.0.score)
            .expect("scores are finite")
            .then_with(|| self.0.tid.cmp(&other.0.tid))
    }
}

impl PartialOrd for BottomEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Accumulator for the `k` *lowest*-scoring matches (distributional
/// similarity top-k minimizes divergence).
#[derive(Debug)]
pub struct BottomKHeap {
    k: usize,
    heap: BinaryHeap<BottomEntry>,
}

impl BottomKHeap {
    /// New accumulator retaining at most `k` matches.
    pub fn new(k: usize) -> BottomKHeap {
        BottomKHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer a match. Returns `true` if it was retained.
    pub fn offer(&mut self, tid: TupleId, score: f64) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(BottomEntry(Match::new(tid, score)));
            return true;
        }
        let worst = self.heap.peek().expect("non-empty").0;
        let better = score < worst.score || (score == worst.score && tid < worst.tid);
        if better {
            self.heap.pop();
            self.heap.push(BottomEntry(Match::new(tid, score)));
        }
        better
    }

    /// The current pruning bound: a match scoring *at or above* this
    /// cannot change the result set (∞ until the heap fills).
    pub fn bound(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map_or(f64::INFINITY, |e| e.0.score)
        }
    }

    /// Whether `k` matches have been accumulated.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Number of retained matches.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no match has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consume the heap, returning matches in ascending-score order.
    pub fn into_sorted(self) -> Vec<Match> {
        let mut v: Vec<Match> = self.heap.into_iter().map(|e| e.0).collect();
        crate::query::sort_matches_asc(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_k_keeps_smallest() {
        let mut h = BottomKHeap::new(2);
        assert_eq!(h.bound(), f64::INFINITY);
        for (tid, s) in [(1, 0.5), (2, 0.1), (3, 0.9), (4, 0.05)] {
            h.offer(tid, s);
        }
        assert!((h.bound() - 0.1).abs() < 1e-12);
        let out = h.into_sorted();
        assert_eq!(out.iter().map(|m| m.tid).collect::<Vec<_>>(), vec![4, 2]);
    }

    #[test]
    fn bottom_k_ties_prefer_smaller_tid() {
        let mut h = BottomKHeap::new(1);
        h.offer(9, 0.3);
        assert!(h.offer(2, 0.3));
        assert_eq!(h.into_sorted()[0].tid, 2);
    }

    #[test]
    fn bottom_k_zero_capacity() {
        let mut h = BottomKHeap::new(0);
        assert!(!h.offer(1, 0.0));
        assert!(h.is_empty());
    }

    #[test]
    fn keeps_only_k_best() {
        let mut h = TopKHeap::new(3, 0.0);
        for (tid, s) in [(1, 0.1), (2, 0.9), (3, 0.5), (4, 0.7), (5, 0.2)] {
            h.offer(tid, s);
        }
        let out = h.into_sorted();
        assert_eq!(out.iter().map(|m| m.tid).collect::<Vec<_>>(), vec![2, 4, 3]);
    }

    #[test]
    fn threshold_rises_as_heap_fills() {
        let mut h = TopKHeap::new(2, 0.0);
        assert_eq!(h.threshold(), 0.0);
        h.offer(1, 0.4);
        assert_eq!(h.threshold(), 0.0, "not yet full");
        h.offer(2, 0.6);
        assert!((h.threshold() - 0.4).abs() < 1e-12);
        h.offer(3, 0.9);
        assert!((h.threshold() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn floor_rejects_low_scores() {
        let mut h = TopKHeap::new(5, 0.5);
        assert!(!h.offer(1, 0.49));
        assert!(h.offer(2, 0.5));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn ties_prefer_smaller_tid() {
        let mut h = TopKHeap::new(2, 0.0);
        h.offer(10, 0.5);
        h.offer(20, 0.5);
        assert!(
            h.offer(5, 0.5),
            "equal score but smaller tid should displace"
        );
        let out = h.into_sorted();
        assert_eq!(out.iter().map(|m| m.tid).collect::<Vec<_>>(), vec![5, 10]);
    }

    #[test]
    fn k_zero_accepts_nothing() {
        let mut h = TopKHeap::new(0, 0.0);
        assert!(!h.offer(1, 1.0));
        assert!(h.into_sorted().is_empty());
    }

    #[test]
    fn exact_duplicate_scores_all_fit() {
        let mut h = TopKHeap::new(3, 0.0);
        for tid in 0..3 {
            assert!(h.offer(tid, 0.25));
        }
        assert!(h.is_full());
        assert_eq!(h.into_sorted().len(), 3);
    }
}
